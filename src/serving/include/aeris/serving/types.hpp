#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aeris/core/sampler.hpp"
#include "aeris/tensor/tensor.hpp"

#include "aeris/core/forecaster.hpp"

namespace aeris::serving {

/// Quality/latency class routing against a multi-variant ModelRegistry: a
/// request that doesn't pin a variant by name can ask for the fast preview
/// tier (lowest skill_tier) or the full-skill tier (highest) instead of
/// the registry default. kAny keeps the default variant.
enum class QualityClass { kAny, kPreview, kFullSkill };

/// Graceful degradation under load: when the estimated queue wait at
/// admission exceeds the threshold, the server trades ensemble quality for
/// latency instead of rejecting — fewer ODE solver steps per forecast step
/// and/or fewer ensemble members. The response reports what was actually
/// served (ForecastResult::degraded / solver_steps / members_served).
struct DegradePolicy {
  /// Zeroth rung, meaningful only when the resolved variant declares a
  /// fallback edge in the ModelRegistry: estimated wait (ms) above which
  /// the admission is re-routed to the fallback (coarse/preview) variant
  /// before any sampler switch or step/member cut — the cheapest whole
  /// quality trade available under overload. Cross-grid edges coarsen the
  /// request's init and forcings by area-mean pooling. 0 disables the
  /// rung; negative forces it on every admission (test knob). The
  /// remaining rungs then evaluate against the fallback variant's engine.
  double fallback_wait_threshold_ms = 0.0;
  /// Estimated wait (ms) above which admissions are degraded. 0 disables
  /// the policy entirely; negative forces degradation on every admission
  /// (deterministic knob for tests and fault drills).
  double est_wait_threshold_ms = 0.0;
  /// Solver steps used for degraded requests (0 keeps the engine config).
  int degraded_solver_steps = 0;
  /// Member cap for degraded requests (0 keeps the requested count).
  std::int64_t max_members = 0;
  /// First degradation rung when the engine serves a distilled student
  /// (ParallelEnsembleEngine::has_consistency()): a teacher-path admission
  /// crossing est_wait_threshold_ms is switched to the few-step
  /// consistency sampler at full quality knobs — same members, the
  /// student's own step count — which sheds ~solver_steps/consistency_steps
  /// of the load before any member or step cutting. Ignored (old
  /// single-rung behavior) when the engine has no consistency path.
  bool to_consistency = true;
  /// Second rung, meaningful only after a sampler switch: estimated wait
  /// above which the step/member cuts above are applied *on top of* the
  /// switch. 0 disables the second rung (the switch alone absorbs the
  /// overload); negative forces the cuts on every degraded admission.
  /// Requests degraded without a consistency path available keep the old
  /// single-rung behavior (cuts at est_wait_threshold_ms).
  double cut_wait_threshold_ms = 0.0;
};

/// ForecastServer tuning. All knobs have safe defaults; from_env() overlays
/// the AERIS_SERVE_* environment variables documented in the README.
struct ServerOptions {
  /// Max concurrently admitted requests; admissions beyond this are shed
  /// with RejectedError{kQueueFull}.
  std::int64_t queue_capacity = 64;
  /// Max members packed into one stacked [E, H, W, C] solve. Members of
  /// *different* requests share a pack whenever their solver schedules
  /// match.
  std::int64_t batch = 8;
  /// Worker threads draining the queue. Each worker runs its packs' kernels
  /// inline (SerialRegionGuard) when workers > 1, so throughput scales
  /// across packs; a single worker keeps the shared kernel thread pool.
  int workers = 1;
  /// Deadline applied to requests that do not carry their own
  /// (ForecastRequest::deadline_ms < 0). 0 means no default deadline.
  double default_deadline_ms = 0.0;
  DegradePolicy degrade{};
  /// Transient-fault retries per member step (forcing fetch or model call
  /// throwing). Exhausting them fails the request with kFault.
  int max_step_retries = 2;
  /// Base of the exponential retry backoff; the delay for attempt k is
  /// retry_backoff_ms * 2^(k-1) * (0.5 + jitter), jitter in [0, 1).
  double retry_backoff_ms = 1.0;
  /// Absolute ceiling (ms) on any single retry backoff delay, so a large
  /// max_step_retries cannot grow 2^(k-1) past the request's own deadline
  /// budget. <= 0 removes the cap (the pre-cap growth law).
  double max_retry_backoff_ms = 250.0;

  /// Defaults overlaid with AERIS_SERVE_QUEUE_CAP, AERIS_SERVE_DEADLINE_MS,
  /// AERIS_SERVE_RETRY_CAP_MS, AERIS_SERVE_DEGRADE_WAIT_MS,
  /// AERIS_SERVE_DEGRADE_STEPS, AERIS_SERVE_DEGRADE_MEMBERS,
  /// AERIS_SERVE_DEGRADE_TO_CONSISTENCY, AERIS_SERVE_DEGRADE_CUT_WAIT_MS
  /// and AERIS_SERVE_DEGRADE_FALLBACK_WAIT_MS. (The model-routing knobs
  /// AERIS_SERVE_MODEL / AERIS_SERVE_FALLBACK_MODEL live on
  /// ModelRegistry::overlay_env, which owns the variant table.)
  static ServerOptions from_env();
};

/// The backoff delay before transient-fault retry `attempt` (1-based):
/// retry_backoff_ms * 2^(attempt-1) * (0.5 + jitter), then clamped to
/// max_retry_backoff_ms when the cap is positive. Exposed as a free
/// function so the growth law (and its cap) is regression-testable without
/// standing up a server.
double retry_delay_ms(const ServerOptions& opts, int attempt, double jitter);

/// One forecast job: roll `members` ensemble members forward `steps`
/// autoregressive steps from `init`, with forcings supplied per step.
struct ForecastRequest {
  Tensor init;                  ///< [H, W, V] standardized initial state
  core::ForcingFn forcings_at;  ///< thread-safe; may be called concurrently
  std::int64_t members = 1;
  std::int64_t steps = 1;
  /// Ensemble seed: an unstressed request's trajectories are
  /// bitwise-identical to DiffusionForecaster::ensemble_rollout with this
  /// seed, regardless of how the server packs it with other requests.
  std::uint64_t seed = 0;
  /// Per-request deadline: < 0 uses the server default, 0 disables.
  double deadline_ms = -1.0;
  /// On deadline expiry, return the trajectory prefix computed so far
  /// instead of an empty result.
  bool return_partial = false;
  /// Sampler family to serve this request with; nullopt runs the engine's
  /// default. kConsistency on an engine without a consistency path
  /// (has_consistency()) is refused with a typed
  /// RejectedError{kUnsupported} result, never a bare throw.
  std::optional<core::SamplerKind> sampler;
  /// Registry variant to serve, by name. Empty routes by `quality`
  /// instead; an unknown name is refused with RejectedError{kUnsupported}.
  /// Single-model servers have exactly one variant ("default"), so plain
  /// requests need no change.
  std::string model;
  /// Quality-class routing applied when `model` is empty.
  QualityClass quality = QualityClass::kAny;
};

enum class RequestStatus {
  kOk,                ///< all members completed
  kRejected,          ///< shed at admission (queue full or shutdown)
  kDeadlineExceeded,  ///< expired before completion
  kNumericalError,    ///< >=1 member diverged even after quarantine retry
  kFault,             ///< transient-fault retries exhausted
  kWorkerLost,        ///< cluster shrank below quorum before completion
};

/// Per-member outcome; present for every served member.
struct MemberReport {
  std::int64_t member = 0;
  bool ok = false;
  /// The member produced a non-finite state and was retried on a fresh
  /// (salted) noise stream. ok tells whether the retry recovered it.
  bool quarantined = false;
  std::int64_t steps_completed = 0;
  std::string message;
};

struct ForecastResult {
  RequestStatus status = RequestStatus::kOk;
  /// trajectories[m][s] is member m at step s. Full for kOk; per-member
  /// prefixes for kNumericalError; the computed prefix for
  /// kDeadlineExceeded when return_partial was set; empty otherwise.
  std::vector<std::vector<Tensor>> trajectories;
  std::vector<MemberReport> members;
  bool degraded = false;
  int solver_steps = 0;  ///< solver steps per forecast step actually used
  /// Sampler family actually served (may differ from the request when the
  /// DegradePolicy switched a teacher-path request to the student).
  core::SamplerKind sampler = core::SamplerKind::kDpmSolver;
  /// Registry name of the variant that actually served the request (may
  /// differ from the one requested when the cross-model fallback rung
  /// fired; empty only for admissions refused before routing).
  std::string model_served;
  std::int64_t members_served = 0;
  double queue_wait_ms = 0.0;
  double total_ms = 0.0;
  int transient_retries = 0;
  /// Typed error for non-kOk statuses (RejectedError,
  /// DeadlineExceededError, aeris::NumericalError, WorkerLostError, or the
  /// original fault), so callers can std::rethrow_exception if they prefer
  /// exceptions.
  std::exception_ptr error;
  std::string error_message;

  bool ok() const { return status == RequestStatus::kOk; }
};

/// Per-variant serving counters, keyed by registry name in
/// ServerStats::per_model. Single-model servers report one entry (their
/// only variant), so dashboards treat both uniformly.
struct ModelServeStats {
  /// Admissions routed to this variant — post-fallback, i.e. the variant
  /// that will actually serve. Sums to ServerStats::accepted.
  std::int64_t admitted = 0;
  /// Requests finalized kOk on this variant. Sums to
  /// ServerStats::completed.
  std::int64_t completed = 0;
  /// Admissions *this* variant shed to its fallback (keyed by the variant
  /// originally resolved, not the one that served). Sums to
  /// ServerStats::degraded_to_fallback_model.
  std::int64_t degraded_to_fallback_model = 0;
};

/// Aggregate counters since construction (see ForecastServer::stats /
/// ClusterForecastServer::stats). The worker-loss counters are only ever
/// nonzero on the cluster server; the single-process server reports them
/// as zero so dashboards can treat both uniformly.
struct ServerStats {
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;   ///< finalized kOk
  std::int64_t deadline_expired = 0;
  std::int64_t faulted = 0;     ///< finalized kFault
  std::int64_t degraded = 0;    ///< admissions degraded by policy
  /// Degraded admissions absorbed by the teacher->student sampler switch
  /// (the first DegradePolicy rung) instead of step/member cuts.
  std::int64_t degraded_to_consistency = 0;
  /// Degraded admissions re-routed to a coarser variant by the zeroth
  /// (cross-model) DegradePolicy rung.
  std::int64_t degraded_to_fallback_model = 0;
  /// Per-variant counters, keyed by registry name. Entries exist for every
  /// registered variant from construction (zeros until traffic arrives).
  std::map<std::string, ModelServeStats> per_model;
  std::int64_t quarantined_members = 0;
  std::int64_t failed_members = 0;  ///< members lost to NumericalError
  std::int64_t transient_retries = 0;
  std::int64_t packs = 0;
  std::int64_t member_steps = 0;  ///< committed member forecast steps
  std::int64_t workers_lost = 0;  ///< worker ranks declared dead
  /// Member forecast steps (the affected members' remaining work) returned
  /// to the ready queue after a worker death, to be recomputed on
  /// surviving ranks from the last committed step.
  std::int64_t requeued_member_steps = 0;
  std::int64_t quorum_drains = 0;  ///< in-flight drains after quorum loss
  /// Elastic membership: worker ranks admitted by the join protocol
  /// (recovered capacity and fresh ranks alike; counts every admission to
  /// leasable membership, so a rank that dies and rejoins counts twice).
  std::int64_t workers_joined = 0;
  /// Below-quorum parks lifted after membership recovered (admissions
  /// resumed in the ledger).
  std::int64_t unparks = 0;
  /// Joiners refused admission because the registry fingerprint they
  /// announced did not match the frozen registry serving traffic.
  std::int64_t registry_fingerprint_rejects = 0;
};

}  // namespace aeris::serving
