#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aeris/core/ensemble.hpp"

namespace aeris::serving::wire {

/// Wire format of the cluster forecast server's serving plane. Messages
/// travel as the World's native `std::vector<float>` payloads; integer
/// header fields are bit-cast into float lanes (memcpy, never a
/// value-preserving cast — a u64 pack id must survive the trip exactly).
/// Packs and results are FIFO per (src, tag), and the pack id rides in
/// every header, so one tag per direction is enough; the front-end's lease
/// table keys on the pack id to match results (and losses) to checked-out
/// work.

/// A decoded work pack (front-end -> worker). `shutdown` is the empty pack
/// (slot count 0): the worker loop exits cleanly instead of waiting for
/// work that will never come.
struct PackMsg {
  std::uint64_t pack_id = 0;
  /// Registry index of the variant this pack runs on: worker ranks resolve
  /// the engine from their local ModelRegistry replica (indices agree
  /// because every rank is built from the same registry).
  std::uint32_t model = 0;
  core::SamplerKind kind = core::SamplerKind::kDpmSolver;
  int solver_steps_override = 0;
  bool shutdown = false;
  std::vector<core::MemberKey> noise;  ///< per slot
  std::vector<Tensor> prev;            ///< per slot, [H, W, V]
  std::vector<Tensor> forcings;        ///< per slot, [H, W, F]
};

/// A decoded pack result (worker -> front-end). `ok` carries one next
/// state per slot, in slot order; otherwise `error` holds the first
/// exception message out of the worker's solve.
struct ResultMsg {
  std::uint64_t pack_id = 0;
  bool ok = false;
  std::vector<Tensor> next;  ///< per slot, [H, W, V]
  std::string error;
};

/// Encodes a work pack. `slots` follow the step_pack contract (prev and
/// forcings non-null); dims are the model's state [h, w, v] and forcing
/// [h, w, f] extents, carried in the header so the worker can rebuild the
/// tensors without consulting its own config.
std::vector<float> encode_pack(std::uint64_t pack_id, std::uint32_t model,
                               core::SamplerKind kind,
                               int solver_steps_override,
                               std::span<const core::MemberSlot> slots,
                               std::int64_t h, std::int64_t w, std::int64_t v,
                               std::int64_t f);

/// The shutdown pack (slot count 0).
std::vector<float> encode_shutdown();

PackMsg decode_pack(const std::vector<float>& payload);

std::vector<float> encode_result(std::uint64_t pack_id,
                                 std::span<const Tensor> next);

std::vector<float> encode_result_error(std::uint64_t pack_id,
                                       const std::string& msg);

ResultMsg decode_result(const std::vector<float>& payload);

/// Message kinds of the elastic-membership join lane (front-end <-> parked
/// spare ranks, kServeJoinTag / kServeAnnounceTag in Traffic::kMembership).
enum class JoinKind : std::uint32_t {
  kInvite = 0,    ///< front-end -> spare: wake up and announce yourself
  kVerdict = 1,   ///< front-end -> spare: admission decision
  kShutdown = 2,  ///< front-end -> spare: the incarnation is over, exit
};

/// A decoded join-lane message. An invite carries the incarnation the
/// joiner would serve under and the fingerprint the offered capacity
/// claims (0 = compute from the local registry replica); a verdict echoes
/// the incarnation and carries the admission decision.
struct JoinMsg {
  JoinKind kind = JoinKind::kShutdown;
  std::uint64_t incarnation = 0;
  std::uint64_t fingerprint = 0;
  bool accept = false;
};

/// A decoded announce (spare -> front-end): the joiner's claimed
/// incarnation and registry fingerprint, validated before any lease.
struct AnnounceMsg {
  std::uint64_t incarnation = 0;
  std::uint64_t fingerprint = 0;
};

std::vector<float> encode_join_invite(std::uint64_t incarnation,
                                      std::uint64_t fingerprint);
std::vector<float> encode_join_verdict(std::uint64_t incarnation, bool accept);
std::vector<float> encode_join_shutdown();
JoinMsg decode_join(const std::vector<float>& payload);

std::vector<float> encode_announce(std::uint64_t incarnation,
                                   std::uint64_t fingerprint);
AnnounceMsg decode_announce(const std::vector<float>& payload);

}  // namespace aeris::serving::wire
