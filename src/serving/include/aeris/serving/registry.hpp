#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aeris/core/ensemble.hpp"
#include "aeris/serving/types.hpp"

namespace aeris::serving {

/// One named engine variant in a ModelRegistry: the engine (grid shape and
/// sampler capabilities live on it), a skill tier for quality-class
/// routing, and an optional cross-model degrade edge. Teacher->student
/// links ride on the engine itself (set_consistency), so a single variant
/// already serves both sampler families of a distilled pair.
struct ModelVariant {
  std::string name;
  const core::ParallelEnsembleEngine* engine = nullptr;
  /// Relative skill ordering for quality-class routing: higher tiers are
  /// more skillful (and slower). QualityClass::kPreview resolves to the
  /// lowest tier, kFullSkill to the highest; ties break toward the earlier
  /// registration.
  int skill_tier = 0;
  /// Registry index of the variant overload falls back to (the
  /// DegradePolicy zeroth rung); -1 when this variant never falls back.
  std::int64_t fallback = -1;
};

/// The model zoo behind one serving front-end: N named engine variants
/// with stable indices (the wire model-id lane), a default variant,
/// quality-class routing, and validated cross-model fallback edges.
///
/// A registry is mutated only while it is being assembled; freeze it
/// before handing it to a server — RequestLedger, the server workers and
/// the cluster ranks all read it lock-free. Variants must be
/// *independently constructed* engines/models (or shared-backbone
/// variants, whose aliased layers carry identical weights): per-worker
/// conditioning caches are shared across the zoo, which is collision-free
/// because LayerIds are process-lifetime unique — but a layer *copy*
/// preserves its LayerId, so two different models assembled from copies of
/// the same layers would alias cache rows with different weights.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Registers a variant; names must be unique and non-empty, the engine
  /// must outlive the registry. The first variant added is the default
  /// until set_default says otherwise. Returns the variant's stable index
  /// (the wire model-id).
  std::int64_t add(const std::string& name,
                   const core::ParallelEnsembleEngine& engine,
                   int skill_tier = 0);

  /// Declares the cross-model degrade edge `from` -> `to`. Validated at
  /// declaration: both variants exist, the edge is not a self-loop, the
  /// variable sets agree (same out_channels and in_channels, so the
  /// forcing channel count matches too), and `to`'s grid either equals
  /// `from`'s or divides it evenly in both extents (area-mean coarsening
  /// of the request's init/forcings is exact on integer factors).
  void set_fallback(const std::string& from, const std::string& to);

  void set_default(const std::string& name);

  /// Overlays the environment's model-routing knobs: AERIS_SERVE_MODEL
  /// names the default variant, AERIS_SERVE_FALLBACK_MODEL wires the
  /// (resulting) default variant's fallback edge. Unset/empty variables
  /// change nothing; unknown names throw (a typo'd deployment should fail
  /// loudly at startup, not silently serve the wrong model). Call while
  /// assembling the registry, before any server reads it.
  void overlay_env();

  std::int64_t size() const {
    return static_cast<std::int64_t>(variants_.size());
  }
  bool empty() const { return variants_.empty(); }

  /// The variant at a stable index; throws std::out_of_range beyond size()
  /// (a worker decoding a model-id lane from a newer front-end must fail
  /// typed, not read garbage).
  const ModelVariant& at(std::int64_t index) const;

  /// The named variant, or nullptr when unknown.
  const ModelVariant* find(const std::string& name) const;

  /// Routing: a non-empty name must match a registered variant; an empty
  /// name resolves the quality class (kAny = default variant, kPreview =
  /// lowest skill tier, kFullSkill = highest). Returns the variant's index
  /// or -1 for an unknown name / empty registry.
  std::int64_t resolve(const std::string& name, QualityClass quality) const;

  std::int64_t default_index() const { return default_; }

  /// Deterministic digest of the frozen registry's serving-visible shape:
  /// variant names, stable indices (by construction order), skill tiers,
  /// fallback edges, default variant, and each engine's grid/channel
  /// geometry and sampler capabilities. Two replicas that would route and
  /// serve identically produce the same fingerprint; the elastic cluster
  /// validates a joiner's announced fingerprint against the frozen
  /// registry before the rank is ever leased work. Never returns 0 (0 is
  /// the join protocol's "compute locally" sentinel).
  std::uint64_t fingerprint() const;

 private:
  std::vector<ModelVariant> variants_;
  std::int64_t default_ = 0;
};

/// Area-mean pooling [H, W, C] -> [h, w, C] (h | H, w | W): the state and
/// forcing adapter a cross-grid fallback edge applies when re-routing a
/// fine-grid request to a coarse variant.
Tensor coarsen_mean(const Tensor& x, std::int64_t h, std::int64_t w);

}  // namespace aeris::serving
