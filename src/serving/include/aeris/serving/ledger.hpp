#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "aeris/core/cursor.hpp"
#include "aeris/core/ensemble.hpp"
#include "aeris/serving/errors.hpp"
#include "aeris/serving/registry.hpp"
#include "aeris/serving/types.hpp"

namespace aeris::serving {

namespace detail {

using Clock = std::chrono::steady_clock;

/// One admitted request. All fields are guarded by RequestLedger::mu_
/// except during a pack's solve, where the executing side alone reads the
/// in-flight members' init/traj tensors (a member has exactly one cursor,
/// and finalization is deferred while inflight > 0).
struct ActiveRequest {
  std::uint64_t id = 0;
  Tensor init;
  core::ForcingFn forcings_at;
  std::int64_t members = 0;  ///< effective (post-degrade) member count
  std::int64_t steps = 0;
  std::uint64_t seed = 0;
  bool return_partial = false;
  bool degraded = false;
  int solver_steps = 0;  ///< effective solver steps (override for step_pack)
  core::SamplerKind sampler = core::SamplerKind::kDpmSolver;
  /// Engine of the registry variant serving this request — the resolved
  /// variant, or its fallback when the cross-model rung fired. Packs never
  /// mix engines (take_pack groups by it).
  const core::ParallelEnsembleEngine* engine = nullptr;
  std::string model_name;         ///< registry name of the serving variant
  std::uint32_t model_index = 0;  ///< registry index (the wire model-id lane)

  Clock::time_point admit{};
  Clock::time_point deadline{};
  bool has_deadline = false;
  bool started = false;
  double queue_wait_ms = 0.0;

  int inflight = 0;  ///< members currently checked out into a pack
  bool finalized = false;
  /// Terminal status decided while members were still in flight; applied
  /// as soon as inflight drains to zero.
  bool doomed = false;
  RequestStatus doom_status = RequestStatus::kOk;
  std::string doom_msg;
  std::exception_ptr doom_err;

  int transient_retries = 0;
  std::int64_t members_done = 0;
  std::vector<std::vector<Tensor>> traj;  ///< [member][completed step]
  std::vector<MemberReport> reports;
  std::vector<char> member_done;
  std::vector<char> quarantine_used;
  std::promise<ForecastResult> promise;
};

}  // namespace detail

/// One member's next pending forecast step, checked out of the ledger into
/// a pack. The identity fields (step, noise, prev) are resolved at
/// checkout and are stable until the item is committed or requeued:
/// finalization of the owning request is deferred while any of its items
/// is checked out, and no other item touches the same member.
struct PackItem {
  std::shared_ptr<detail::ActiveRequest> a;
  std::int64_t member = 0;
  int fault_attempts = 0;

  std::int64_t step = 0;             ///< the step this item will compute
  core::MemberKey noise{};           ///< salted when a quarantine retry
  const Tensor* prev = nullptr;      ///< [H, W, V] conditioning state
};

/// What happened to a checked-out pack. `next[i]` holds item i's next
/// state iff item_error[i] is null and solve_error is null; item_error
/// carries per-item failures (forcing fetch), solve_error a whole-pack
/// failure (the stacked solve threw). pack_ms/solved_count feed the
/// queue-wait EMA (solved_count == 0 skips the update).
struct PackOutcome {
  std::vector<Tensor> next;
  std::vector<std::exception_ptr> item_error;
  std::exception_ptr solve_error;
  double pack_ms = 0.0;
  std::int64_t solved_count = 0;
};

/// Forcing fields fetched for a pack, deduplicated per (request, step):
/// of[i] points at item i's forcing tensor (null when the fetch threw;
/// the exception is in error[i]).
struct FetchedForcings {
  std::deque<Tensor> store;
  std::vector<const Tensor*> of;
  std::vector<std::exception_ptr> error;
};

/// Fetches each item's forcing field outside any lock; a throwing forcing
/// fn only penalizes its own request's items.
FetchedForcings fetch_forcings(std::span<const PackItem> items);

/// Throws std::invalid_argument for malformed requests (wrong shapes, null
/// forcing fn, bad member/step counts) against the resolved variant's
/// engine. Routing failures (unknown model, unsupported sampler) are NOT
/// thrown here — RequestLedger::admit turns them into typed
/// RejectedError{kUnsupported} results. Shared by both serving front-ends.
void validate_request(const core::ParallelEnsembleEngine& engine,
                      const ForecastRequest& req);

/// The serving policy stack, factored out of the execution substrate:
/// bounded admission, per-request deadlines, graceful degradation, retry
/// with capped exponential backoff + deterministic jitter, numerical
/// quarantine, and terminal accounting — everything between "a client
/// called forecast()" and "a stacked solve advanced these members one
/// step", with the solve itself left to the owner:
///
///  - ForecastServer's local workers check packs out (take_pack), run
///    engine.step_pack inline, and commit the outcome.
///  - ClusterForecastServer's front-end rank checks packs out, leases them
///    to SWiPe worker ranks over the wire, commits results as they arrive,
///    and *requeues* the checked-out items of a rank that died — the
///    member-keyed noise contract (core::MemberCursor) makes the re-execution
///    bitwise-identical wherever it lands.
///
/// Every request admitted terminates with a result or a typed error.
class RequestLedger {
 public:
  /// The ledger routes against a frozen ModelRegistry (>= 1 variant;
  /// throws std::invalid_argument when empty). Both the registry and its
  /// engines must outlive the ledger.
  RequestLedger(const ModelRegistry& registry, const ServerOptions& opts);

  /// Normalized options (capacity/batch/workers clamped to >= 1).
  const ServerOptions& options() const { return opts_; }

  /// Admission (client threads). Returns a ready result for refusals
  /// (queue full, shutdown, refused admissions after quorum loss);
  /// otherwise arms `future` with the request's eventual result and
  /// returns false. `capacity_divisor` is the executor count the backlog
  /// estimate divides by (local workers, or currently alive ranks).
  bool admit(const ForecastRequest& req, int capacity_divisor,
             std::future<ForecastResult>& future, ForecastResult& refused);

  /// Blocks until work may be available or the ledger is stopping;
  /// returns false when stopping.
  bool wait_for_work(std::chrono::milliseconds timeout);

  /// FIFO sweep + pack formation: drops cursors of finalized requests,
  /// dooms expired ones, then checks out up to `max_items` eligible items
  /// sharing one (engine, solver steps, sampler) schedule — a pack never
  /// mixes registry variants or sampler families. May return empty (only
  /// backoff-gated cursors right now, or nothing pending).
  std::vector<PackItem> take_pack(std::int64_t max_items);

  /// Commits a pack's outcome: successful steps extend trajectories
  /// (quarantining non-finite members), failures consume fault retries
  /// with capped backoff, deadlines are enforced, and requests whose last
  /// member finished (or doomed requests whose last item drained) are
  /// finalized.
  void commit_pack(std::vector<PackItem> items, PackOutcome out);

  /// Worker-loss path: returns checked-out items to the ready queue
  /// *uncommitted* — the steps they were leased out for never landed, so
  /// the members resume from their last committed step (bitwise: the step
  /// index is in the noise key). Counts the affected members' remaining
  /// steps into ServerStats::requeued_member_steps.
  void requeue_items(std::vector<PackItem> items);

  /// Records `n` worker ranks declared dead.
  void note_workers_lost(int n);

  /// Finalizes every in-flight request with `status` (and a matching typed
  /// error), clearing the ready queue. Used at shutdown (kRejected) and on
  /// quorum loss (kWorkerLost, which also bumps the quorum_drains
  /// counter).
  void drain_all(RequestStatus status, const std::string& msg);

  /// After this, admissions are refused with `status` + `msg` (typed) —
  /// the below-quorum "serving is parked" state.
  void refuse_admissions(RequestStatus status, const std::string& msg);

  /// Lifts refuse_admissions: the cluster un-parked (membership recovered
  /// to quorum) and new requests are admitted again. Requests drained or
  /// refused during the outage keep their typed errors — nothing is
  /// resurrected. No-op while stopping.
  void resume_admissions();

  /// Records one worker rank admitted by the elastic join protocol.
  void note_worker_joined();
  /// Records one below-quorum park lifted after membership recovery.
  void note_unpark();
  /// Records one joiner refused for a registry-fingerprint mismatch.
  void note_fingerprint_reject();

  /// Begins shutdown: wakes every waiter; take_pack returns empty and
  /// admissions are refused with kShutdown from now on. Returns false if
  /// already stopping (stop() idempotence).
  bool begin_stop();
  bool stopping() const;

  ServerStats stats() const;

 private:
  using Clock = detail::Clock;

  /// One member's queue entry between checkouts.
  struct Cursor {
    std::shared_ptr<detail::ActiveRequest> a;
    std::int64_t member = 0;
    int fault_attempts = 0;
    Clock::time_point not_before{};  ///< backoff gate (epoch = eligible now)
  };

  /// Terminal transition: fulfills the promise exactly once, releases the
  /// request's remaining work accounting. Caller holds mu_ and guarantees
  /// a->inflight == 0.
  void finalize_locked(const std::shared_ptr<detail::ActiveRequest>& a,
                       RequestStatus status, std::string msg,
                       std::exception_ptr err);
  /// Consumes one fault retry for `c` (requeueing it behind a capped
  /// backoff gate) or dooms the request when retries are exhausted.
  /// Caller holds mu_.
  void fault_locked(Cursor c, const std::exception_ptr& cause,
                    Clock::time_point now);
  /// Terminal sweep over the requests a drained pack touched. Caller
  /// holds mu_.
  void sweep_terminal_locked(std::span<const PackItem> items);

  const ModelRegistry& registry_;
  ServerOptions opts_;
  Philox jitter_rng_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Cursor> ready_;
  bool stopping_ = false;
  bool refusing_ = false;
  RequestStatus refuse_status_ = RequestStatus::kRejected;
  std::string refuse_msg_;
  std::uint64_t next_id_ = 0;
  std::int64_t active_count_ = 0;
  /// Backlog accounting keyed by registry variant index (the serving
  /// variant, post-fallback): one slow variant's queue depth and step-cost
  /// EMA must not inflate the degradation decisions of a fast one.
  std::vector<std::int64_t> pending_member_steps_;
  std::vector<double> ema_member_step_ms_;
  std::vector<std::shared_ptr<detail::ActiveRequest>> actives_;
  ServerStats stats_;
};

}  // namespace aeris::serving
