#include "aeris/physics/ocean.hpp"

#include <cmath>

namespace aeris::physics {

SlabOcean::SlabOcean(const SpectralGrid& grid, const OceanParams& p, double dt,
                     double enso_init)
    : grid_(grid), p_(p), dt_(dt), enso_(enso_init) {
  const std::size_t delay_steps =
      static_cast<std::size_t>(std::max(1.0, p.enso_delay / dt));
  history_.assign(delay_steps, enso_init);
  sst_.resize(static_cast<std::size_t>(grid.size()));
  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      sst_[static_cast<std::size_t>(r * grid_.w() + c)] =
          sst_equilibrium(r, 0.25) + p_.enso_amp * enso_ * pattern(r, c);
    }
  }
}

double SlabOcean::sst_equilibrium(std::int64_t row, double season) const {
  const double y = (static_cast<double>(row) + 0.5) /
                       static_cast<double>(grid_.h()) -
                   0.5;
  const double base =
      p_.sst_equator + (p_.sst_pole - p_.sst_equator) * (2.0 * std::fabs(y));
  const double seasonal =
      p_.seasonal_amp * std::sin(2.0 * M_PI * season) * (y > 0 ? 1.0 : -1.0);
  return base + seasonal;
}

double SlabOcean::pattern(std::int64_t row, std::int64_t col) const {
  const double y = (static_cast<double>(row) + 0.5) /
                       static_cast<double>(grid_.h()) -
                   0.5;
  const double x = (static_cast<double>(col) + 0.5) /
                   static_cast<double>(grid_.w());
  const double gy = std::exp(-0.5 * y * y / (p_.patt_width_y * p_.patt_width_y));
  const double dx = x - p_.patt_center_x;
  const double gx = std::exp(-0.5 * dx * dx / (p_.patt_width_x * p_.patt_width_x));
  return gx * gy;
}

void SlabOcean::set_enso_index(double e) {
  enso_ = e;
  for (auto& h : history_) h = e;
}

void SlabOcean::step(double season) {
  // Delayed oscillator for the ENSO index.
  const double delayed = history_.front();
  history_.pop_front();
  history_.push_back(enso_);
  enso_ += dt_ * (p_.enso_a * enso_ - p_.enso_b * delayed -
                  p_.enso_c * enso_ * enso_ * enso_);

  // SST: relax to (seasonal profile + ENSO pattern) and diffuse.
  std::vector<cplx> spec = fft2_real(sst_, grid_.h(), grid_.w());
  std::vector<cplx> lap;
  grid_.laplacian(spec, lap);
  const std::vector<double> diff = ifft2_real(lap, grid_.h(), grid_.w());
  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      const std::size_t i = static_cast<std::size_t>(r * grid_.w() + c);
      const double target = sst_equilibrium(r, season) +
                            p_.enso_amp * enso_ * pattern(r, c);
      sst_[i] += dt_ * ((target - sst_[i]) / p_.tau_relax + p_.kappa * diff[i]);
    }
  }
}

double SlabOcean::infer_enso_index(const std::vector<double>& sst,
                                   double season) const {
  double num = 0.0, den = 0.0;
  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      const double w = pattern(r, c);
      if (w <= 0.05) continue;
      const double anom =
          sst[static_cast<std::size_t>(r * grid_.w() + c)] -
          sst_equilibrium(r, season);
      num += w * anom;
      den += w * w * p_.enso_amp;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

double SlabOcean::nino_box_mean() const {
  double num = 0.0, den = 0.0;
  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      const double w = pattern(r, c);
      if (w > 0.3) {
        num += sst_[static_cast<std::size_t>(r * grid_.w() + c)];
        den += 1.0;
      }
    }
  }
  return den > 0 ? num / den : 0.0;
}

}  // namespace aeris::physics
