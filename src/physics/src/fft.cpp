#include "aeris/physics/fft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aeris::physics {

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_pow2(static_cast<std::int64_t>(n))) {
    throw std::invalid_argument("fft: size must be a power of 2");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

void fft2_inplace(std::vector<cplx>& field, std::int64_t h, std::int64_t w,
                  bool inverse) {
  if (static_cast<std::int64_t>(field.size()) != h * w) {
    throw std::invalid_argument("fft2: size mismatch");
  }
  std::vector<cplx> row(static_cast<std::size_t>(w));
  for (std::int64_t r = 0; r < h; ++r) {
    std::copy_n(field.begin() + r * w, w, row.begin());
    fft_inplace(row, inverse);
    std::copy_n(row.begin(), w, field.begin() + r * w);
  }
  std::vector<cplx> col(static_cast<std::size_t>(h));
  for (std::int64_t c = 0; c < w; ++c) {
    for (std::int64_t r = 0; r < h; ++r) col[static_cast<std::size_t>(r)] = field[static_cast<std::size_t>(r * w + c)];
    fft_inplace(col, inverse);
    for (std::int64_t r = 0; r < h; ++r) field[static_cast<std::size_t>(r * w + c)] = col[static_cast<std::size_t>(r)];
  }
}

std::vector<cplx> fft2_real(const std::vector<double>& grid, std::int64_t h,
                            std::int64_t w) {
  std::vector<cplx> spec(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) spec[i] = cplx(grid[i], 0.0);
  fft2_inplace(spec, h, w, /*inverse=*/false);
  return spec;
}

std::vector<double> ifft2_real(std::vector<cplx> spec, std::int64_t h,
                               std::int64_t w) {
  fft2_inplace(spec, h, w, /*inverse=*/true);
  std::vector<double> out(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) out[i] = spec[i].real();
  return out;
}

}  // namespace aeris::physics
