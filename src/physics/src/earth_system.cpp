#include "aeris/physics/earth_system.hpp"

#include <cmath>
#include <stdexcept>

namespace aeris::physics {
namespace {

QgParams perturbed(QgParams q, double eps, const Philox& rng) {
  if (eps != 0.0) {
    auto tweak = [&](double v, std::uint64_t i) {
      return v * (1.0 + eps * rng.normal(rng_stream::kEnsemblePerturbation, 0, i));
    };
    q.beta = tweak(q.beta, 1);
    q.u_shear = tweak(q.u_shear, 2);
    q.r_bot = std::fabs(tweak(q.r_bot, 3));
    q.kd = std::fabs(tweak(q.kd, 4));
  }
  return q;
}

}  // namespace

const char* var_name(Var v) {
  switch (v) {
    case Var::kT2m: return "T2m";
    case Var::kU10: return "U10";
    case Var::kV10: return "V10";
    case Var::kMslp: return "MSLP";
    case Var::kSst: return "SST";
    case Var::kZ500: return "Z500";
    case Var::kT850: return "T850";
    case Var::kQ700: return "Q700";
    case Var::kU850: return "U850";
    case Var::kV850: return "V850";
    default: return "?";
  }
}

EarthSystem::EarthSystem(const EarthSystemParams& p)
    : p_(p), qg_(perturbed(p.qg, p.param_perturbation, Philox(p.seed))) {
  const SpectralGrid& g = qg_.grid();
  thermo_ = std::make_unique<Thermo>(g, p.thermo);
  ocean_ = std::make_unique<SlabOcean>(g, p.ocean, p.qg.dt);
  cyclones_ = std::make_unique<CycloneField>(g, p.cyclone, p.seed);

  // Static fields: two idealized continents and smooth orography bumps.
  const std::int64_t h = g.h(), w = g.w();
  land_mask_.assign(static_cast<std::size_t>(h * w), 0.0);
  orography_.assign(static_cast<std::size_t>(h * w), 0.0);
  for (std::int64_t r = 0; r < h; ++r) {
    const double y = (static_cast<double>(r) + 0.5) / static_cast<double>(h);
    for (std::int64_t c = 0; c < w; ++c) {
      const double x = (static_cast<double>(c) + 0.5) / static_cast<double>(w);
      const bool continent_a = x > 0.05 && x < 0.30 && y > 0.25 && y < 0.85;
      const bool continent_b = x > 0.45 && x < 0.58 && y > 0.15 && y < 0.70;
      const std::size_t i = static_cast<std::size_t>(r * w + c);
      if (continent_a || continent_b) land_mask_[i] = 1.0;
      // Mountain ridge on continent A; gentle highlands on B.
      orography_[i] =
          (continent_a
               ? 1.2 * std::exp(-80.0 * (x - 0.12) * (x - 0.12)) *
                     std::exp(-8.0 * (y - 0.55) * (y - 0.55))
               : 0.0) +
          (continent_b ? 0.4 * std::exp(-40.0 * (x - 0.52) * (x - 0.52)) : 0.0);
    }
  }
}

std::int64_t EarthSystem::steps_per_6h() const {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(6.0 / (kHoursPerTimeUnit * p_.qg.dt))));
}

double EarthSystem::season() const {
  return std::fmod(time_hours_ / kHoursPerYear, 1.0);
}

void EarthSystem::spin_up(std::int64_t steps, std::uint64_t member) {
  // Seed at finite amplitude so the baroclinic instability saturates
  // within the spin-up window rather than after it.
  qg_.init_random(Philox(p_.seed), member, 3e-2);
  for (std::int64_t i = 0; i < steps; ++i) step();
}

void EarthSystem::step() {
  const double dt = p_.qg.dt;
  qg_.step();
  // Tracers ride the upper-layer flow; re-derive the spectral psi.
  const std::vector<double> psi1 = qg_.psi(0);
  std::vector<cplx> psi_spec =
      fft2_real(psi1, qg_.grid().h(), qg_.grid().w());
  thermo_->step(psi_spec, ocean_->sst(), land_mask_, season(), dt);
  ocean_->step(season());
  cyclones_->step(qg_.u(1), qg_.v(1), ocean_->sst(), land_mask_, dt);
  time_hours_ += dt * kHoursPerTimeUnit;
}

void EarthSystem::advance_hours(double hours) {
  const std::int64_t steps = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(hours / (kHoursPerTimeUnit * p_.qg.dt))));
  for (std::int64_t i = 0; i < steps; ++i) step();
}

Tensor EarthSystem::snapshot() const {
  const std::int64_t h = qg_.grid().h(), w = qg_.grid().w();
  Tensor out({kNumVars, h, w});

  const std::vector<double> u1 = qg_.u(0);
  const std::vector<double> v1 = qg_.v(0);
  const std::vector<double> u2 = qg_.u(1);
  const std::vector<double> v2 = qg_.v(1);
  const std::vector<double> psi1 = qg_.psi(0);
  const std::vector<double> psi2 = qg_.psi(1);
  const std::vector<double>& t = thermo_->temperature();
  const std::vector<double>& q = thermo_->humidity();
  const std::vector<double>& sst = ocean_->sst();

  // Surface-like fields, scaled to physically plausible magnitudes.
  std::vector<double> u10(u2), v10(v2), mslp(psi2), t2m(t), qv(q);
  const double wind_scale = 120.0;   // QG units -> m/s-like
  const double press_scale = 500.0;  // psi -> hPa anomaly
  for (auto& x : u10) x *= wind_scale;
  for (auto& x : v10) x *= wind_scale;
  for (std::size_t i = 0; i < mslp.size(); ++i) {
    mslp[i] = 1013.0 - press_scale * psi2[i] - 2.0 * orography_[i];
  }
  // 2m temperature couples to the surface (SST over ocean).
  for (std::size_t i = 0; i < t2m.size(); ++i) {
    t2m[i] = land_mask_[i] > 0.5 ? t[i] - 3.0 * orography_[i]
                                 : 0.5 * (t[i] + sst[i]);
  }
  cyclones_->imprint(u10, v10, mslp, t2m, qv);

  auto write = [&](Var v, const std::vector<double>& f, double scale,
                   double offset) {
    float* dst = out.data() + static_cast<std::int64_t>(v) * h * w;
    for (std::size_t i = 0; i < f.size(); ++i) {
      dst[i] = static_cast<float>(offset + scale * f[i]);
    }
  };
  write(Var::kT2m, t2m, 1.0, 0.0);
  write(Var::kU10, u10, 1.0, 0.0);
  write(Var::kV10, v10, 1.0, 0.0);
  write(Var::kMslp, mslp, 1.0, 0.0);
  write(Var::kSst, sst, 1.0, 0.0);
  write(Var::kZ500, psi1, 980.0, 5500.0);  // streamfunction as geopotential
  write(Var::kT850, t, 0.9, -2.0);
  write(Var::kQ700, qv, 1.0, 0.0);
  write(Var::kU850, u2, wind_scale * 0.8, 0.0);
  write(Var::kV850, v2, wind_scale * 0.8, 0.0);
  return out;
}

Tensor EarthSystem::forcings() const {
  const std::int64_t h = qg_.grid().h(), w = qg_.grid().w();
  Tensor out({kNumForcings, h, w});
  const double s = season();
  const double hour = std::fmod(time_hours_, 24.0) / 24.0;
  for (std::int64_t r = 0; r < h; ++r) {
    const double y = (static_cast<double>(r) + 0.5) / static_cast<double>(h) -
                     0.5;  // [-0.5, 0.5]
    // Daily-mean insolation by "latitude" with a solstice tilt.
    const double decl = 0.41 * std::sin(2.0 * M_PI * s);
    for (std::int64_t c = 0; c < w; ++c) {
      const double x = (static_cast<double>(c) + 0.5) / static_cast<double>(w);
      const double coslat = std::cos(y * M_PI);
      const double diurnal =
          std::max(0.0, std::cos(2.0 * M_PI * (x - hour)));
      const double toa =
          std::max(0.0, coslat * (1.0 + decl * std::sin(y * M_PI))) * diurnal;
      const std::size_t i = static_cast<std::size_t>(r * w + c);
      out[0 * h * w + static_cast<std::int64_t>(i)] =
          static_cast<float>(toa);
      out[1 * h * w + static_cast<std::int64_t>(i)] =
          static_cast<float>(orography_[i]);
      out[2 * h * w + static_cast<std::int64_t>(i)] =
          static_cast<float>(land_mask_[i]);
    }
  }
  return out;
}

void EarthSystem::perturb(const Philox& rng, std::uint64_t stream,
                          double amplitude) {
  const SpectralGrid& g = qg_.grid();
  std::vector<double> noise(static_cast<std::size_t>(g.size()));
  for (int layer = 0; layer < 2; ++layer) {
    for (std::int64_t i = 0; i < g.size(); ++i) {
      noise[static_cast<std::size_t>(i)] =
          amplitude * rng.normal(rng_stream::kEnsemblePerturbation,
                                 stream * 2 + static_cast<std::uint64_t>(layer),
                                 static_cast<std::uint64_t>(i));
    }
    std::vector<cplx> spec = fft2_real(noise, g.h(), g.w());
    g.dealias(spec);
    auto& q = qg_.q_spec(layer);
    for (std::size_t i = 0; i < q.size(); ++i) q[i] += spec[i];
  }
  qg_.invert();
}

void EarthSystem::assimilate(const Tensor& state) {
  const SpectralGrid& g = qg_.grid();
  const std::int64_t h = g.h(), w = g.w();
  if (state.shape() != Shape{kNumVars, h, w}) {
    throw std::invalid_argument("assimilate: bad state shape");
  }
  auto read = [&](Var v, double scale, double offset) {
    std::vector<double> f(static_cast<std::size_t>(h * w));
    const float* src = state.data() + static_cast<std::int64_t>(v) * h * w;
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = (static_cast<double>(src[i]) - offset) / scale;
    }
    return f;
  };
  // Invert the Z500 / MSLP mappings back to streamfunctions, then to PV.
  const std::vector<double> psi1 = read(Var::kZ500, 980.0, 5500.0);
  std::vector<double> psi2(static_cast<std::size_t>(h * w));
  const std::vector<double> mslp = read(Var::kMslp, 1.0, 0.0);
  for (std::size_t i = 0; i < psi2.size(); ++i) {
    psi2[i] = (1013.0 - mslp[i] - 2.0 * orography_[i]) / 500.0;
  }
  std::vector<cplx> p1 = fft2_real(psi1, h, w);
  std::vector<cplx> p2 = fft2_real(psi2, h, w);
  const double b = 0.5 * qg_.params().kd * qg_.params().kd;
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      const std::size_t i = static_cast<std::size_t>(r * w + c);
      const double kk = g.k2(r, c);
      qg_.q_spec(0)[i] = -kk * p1[i] + b * (p2[i] - p1[i]);
      qg_.q_spec(1)[i] = -kk * p2[i] + b * (p1[i] - p2[i]);
    }
  }
  qg_.invert();
  thermo_->set_temperature(read(Var::kT850, 0.9, -2.0));
  thermo_->set_humidity(read(Var::kQ700, 1.0, 0.0));
  std::vector<double>& sst = ocean_->sst();
  const std::vector<double> new_sst = read(Var::kSst, 1.0, 0.0);
  sst = new_sst;
}

}  // namespace aeris::physics
