#include "aeris/physics/era5like.hpp"

namespace aeris::physics {

Reanalysis record(EarthSystem& world, std::int64_t samples,
                  double interval_hours) {
  Reanalysis out;
  out.states.reserve(static_cast<std::size_t>(samples));
  out.forcings.reserve(static_cast<std::size_t>(samples));
  for (std::int64_t i = 0; i < samples; ++i) {
    out.states.push_back(world.snapshot());
    out.forcings.push_back(world.forcings());
    out.time_hours.push_back(world.time_hours());
    out.nino.push_back(world.ocean().nino_box_mean());
    out.storms.push_back(world.cyclones().storms());
    world.advance_hours(interval_hours);
  }
  return out;
}

Reanalysis generate_reanalysis(const ReanalysisConfig& cfg) {
  EarthSystem world(cfg.params);
  world.spin_up(cfg.spin_up_steps, cfg.member);
  return record(world, cfg.samples, cfg.interval_hours);
}

}  // namespace aeris::physics
