#include "aeris/physics/spectral.hpp"

#include <cmath>
#include <stdexcept>

namespace aeris::physics {

SpectralGrid::SpectralGrid(std::int64_t h, std::int64_t w, double ly,
                           double lx)
    : h_(h), w_(w), ly_(ly), lx_(lx) {
  if (!is_pow2(h) || !is_pow2(w)) {
    throw std::invalid_argument("SpectralGrid: dims must be powers of 2");
  }
  ky_.resize(static_cast<std::size_t>(h));
  kx_.resize(static_cast<std::size_t>(w));
  for (std::int64_t r = 0; r < h; ++r) {
    const std::int64_t m = r <= h / 2 ? r : r - h;
    ky_[static_cast<std::size_t>(r)] = 2.0 * M_PI * static_cast<double>(m) / ly;
  }
  for (std::int64_t c = 0; c < w; ++c) {
    const std::int64_t m = c <= w / 2 ? c : c - w;
    kx_[static_cast<std::size_t>(c)] = 2.0 * M_PI * static_cast<double>(m) / lx;
  }
  dealias_mask_.resize(static_cast<std::size_t>(h * w));
  for (std::int64_t r = 0; r < h; ++r) {
    const std::int64_t mr = r <= h / 2 ? r : h - r;
    for (std::int64_t c = 0; c < w; ++c) {
      const std::int64_t mc = c <= w / 2 ? c : w - c;
      dealias_mask_[static_cast<std::size_t>(r * w + c)] =
          mr <= h / 3 && mc <= w / 3;
    }
  }
}

void SpectralGrid::ddx(const std::vector<cplx>& in,
                       std::vector<cplx>& out) const {
  out.resize(in.size());
  for (std::int64_t r = 0; r < h_; ++r) {
    for (std::int64_t c = 0; c < w_; ++c) {
      out[static_cast<std::size_t>(r * w_ + c)] =
          cplx(0.0, kx(c)) * in[static_cast<std::size_t>(r * w_ + c)];
    }
  }
}

void SpectralGrid::ddy(const std::vector<cplx>& in,
                       std::vector<cplx>& out) const {
  out.resize(in.size());
  for (std::int64_t r = 0; r < h_; ++r) {
    for (std::int64_t c = 0; c < w_; ++c) {
      out[static_cast<std::size_t>(r * w_ + c)] =
          cplx(0.0, ky(r)) * in[static_cast<std::size_t>(r * w_ + c)];
    }
  }
}

void SpectralGrid::laplacian(const std::vector<cplx>& in,
                             std::vector<cplx>& out) const {
  out.resize(in.size());
  for (std::int64_t r = 0; r < h_; ++r) {
    for (std::int64_t c = 0; c < w_; ++c) {
      out[static_cast<std::size_t>(r * w_ + c)] =
          -k2(r, c) * in[static_cast<std::size_t>(r * w_ + c)];
    }
  }
}

void SpectralGrid::inverse_laplacian(const std::vector<cplx>& in,
                                     std::vector<cplx>& out) const {
  out.resize(in.size());
  for (std::int64_t r = 0; r < h_; ++r) {
    for (std::int64_t c = 0; c < w_; ++c) {
      const double kk = k2(r, c);
      out[static_cast<std::size_t>(r * w_ + c)] =
          kk > 0.0 ? in[static_cast<std::size_t>(r * w_ + c)] / (-kk)
                   : cplx(0.0, 0.0);
    }
  }
}

void SpectralGrid::dealias(std::vector<cplx>& spec) const {
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (!dealias_mask_[i]) spec[i] = cplx(0.0, 0.0);
  }
}

std::vector<cplx> SpectralGrid::jacobian(const std::vector<cplx>& a,
                                         const std::vector<cplx>& b) const {
  std::vector<cplx> ax, ay, bx, by;
  ddx(a, ax);
  ddy(a, ay);
  ddx(b, bx);
  ddy(b, by);
  const auto gax = ifft2_real(ax, h_, w_);
  const auto gay = ifft2_real(ay, h_, w_);
  const auto gbx = ifft2_real(bx, h_, w_);
  const auto gby = ifft2_real(by, h_, w_);
  std::vector<double> j(gax.size());
  for (std::size_t i = 0; i < j.size(); ++i) {
    j[i] = gax[i] * gby[i] - gay[i] * gbx[i];
  }
  std::vector<cplx> out = fft2_real(j, h_, w_);
  dealias(out);
  return out;
}

std::vector<double> SpectralGrid::isotropic_spectrum(
    const std::vector<cplx>& spec) const {
  const std::int64_t nbins = std::min(h_, w_) / 2;
  std::vector<double> bins(static_cast<std::size_t>(nbins), 0.0);
  const double norm = 1.0 / static_cast<double>(h_ * w_);
  for (std::int64_t r = 0; r < h_; ++r) {
    const std::int64_t mr = r <= h_ / 2 ? r : h_ - r;
    for (std::int64_t c = 0; c < w_; ++c) {
      const std::int64_t mc = c <= w_ / 2 ? c : w_ - c;
      // Index by multiples of the fundamental of the *shorter* axis so
      // bins are isotropic in wavenumber magnitude.
      const double kmag = std::sqrt(static_cast<double>(mr * mr + mc * mc));
      const std::int64_t bin = static_cast<std::int64_t>(kmag);
      if (bin < nbins) {
        const cplx v = spec[static_cast<std::size_t>(r * w_ + c)] * norm;
        bins[static_cast<std::size_t>(bin)] += std::norm(v);
      }
    }
  }
  return bins;
}

}  // namespace aeris::physics
