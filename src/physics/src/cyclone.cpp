#include "aeris/physics/cyclone.hpp"

#include <algorithm>
#include <cmath>

namespace aeris::physics {

CycloneField::CycloneField(const SpectralGrid& grid, const CycloneParams& p,
                           std::uint64_t seed)
    : grid_(grid), p_(p), rng_(seed) {}

double CycloneField::bilinear(const std::vector<double>& f, double x,
                              double y) const {
  const double gx = x / grid_.lx() * static_cast<double>(grid_.w());
  const double gy = y / grid_.ly() * static_cast<double>(grid_.h());
  const std::int64_t c0 = static_cast<std::int64_t>(std::floor(gx));
  const std::int64_t r0 = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(c0);
  const double fy = gy - static_cast<double>(r0);
  auto at = [&](std::int64_t r, std::int64_t c) {
    r = ((r % grid_.h()) + grid_.h()) % grid_.h();
    c = ((c % grid_.w()) + grid_.w()) % grid_.w();
    return f[static_cast<std::size_t>(r * grid_.w() + c)];
  };
  return (1 - fy) * ((1 - fx) * at(r0, c0) + fx * at(r0, c0 + 1)) +
         fy * ((1 - fx) * at(r0 + 1, c0) + fx * at(r0 + 1, c0 + 1));
}

void CycloneField::seed_storm(double x, double y, double intensity) {
  Storm s;
  s.x = x;
  s.y = y;
  s.intensity = intensity;
  s.id = next_id_++;
  storms_.push_back(s);
}

void CycloneField::step(const std::vector<double>& u_steer,
                        const std::vector<double>& v_steer,
                        const std::vector<double>& sst,
                        const std::vector<double>& land_mask, double dt) {
  ++step_index_;

  // Stochastic genesis over warm tropical ocean (counter RNG keyed by the
  // step index so different seeds give independent storm histories).
  const float u = rng_.uniform(rng_stream::kPhysicsForcing,
                               static_cast<std::uint64_t>(step_index_), 0, 3);
  if (static_cast<double>(u) < p_.spawn_rate * dt) {
    const double sx =
        grid_.lx() * rng_.uniform(rng_stream::kPhysicsForcing,
                                  static_cast<std::uint64_t>(step_index_), 1);
    const double off = (rng_.uniform(rng_stream::kPhysicsForcing,
                                     static_cast<std::uint64_t>(step_index_), 2) -
                        0.5) *
                       2.0 * p_.tropics_band;
    const double sy = grid_.ly() * (0.5 + off);
    const double local_sst = bilinear(sst, sx, sy);
    const double on_land = bilinear(land_mask, sx, sy);
    if (local_sst > p_.sst_threshold && on_land < 0.5) {
      seed_storm(sx, sy, p_.death_intensity * 1.5);
    }
  }

  for (Storm& s : storms_) {
    // Steering flow + beta drift (drift flips with hemisphere).
    const double us =
        p_.steering_gain * bilinear(u_steer, s.x, s.y) + p_.beta_drift_u;
    const double hemi = s.y > grid_.ly() * 0.5 ? 1.0 : -1.0;
    const double vs =
        p_.steering_gain * bilinear(v_steer, s.x, s.y) + hemi * p_.beta_drift_v;
    s.x = std::fmod(s.x + us * dt + grid_.lx(), grid_.lx());
    s.y = std::fmod(s.y + vs * dt + grid_.ly(), grid_.ly());

    // Intensity: logistic growth over warm ocean, decay otherwise.
    const double local_sst = bilinear(sst, s.x, s.y);
    const double on_land = bilinear(land_mask, s.x, s.y);
    if (on_land < 0.5 && local_sst > p_.sst_threshold) {
      const double drive = (local_sst - p_.sst_threshold);
      s.intensity += dt * p_.intens_rate * drive * s.intensity *
                     (1.0 - s.intensity / p_.v_max);
    } else {
      s.intensity -= dt * p_.decay_rate * s.intensity;
    }
    ++s.age_steps;
  }

  storms_.erase(std::remove_if(storms_.begin(), storms_.end(),
                               [&](const Storm& s) {
                                 return s.intensity < p_.death_intensity;
                               }),
                storms_.end());
}

void CycloneField::imprint(std::vector<double>& u10, std::vector<double>& v10,
                           std::vector<double>& mslp, std::vector<double>& t2m,
                           std::vector<double>& q) const {
  const double rm = p_.core_radius;
  for (const Storm& s : storms_) {
    for (std::int64_t r = 0; r < grid_.h(); ++r) {
      for (std::int64_t c = 0; c < grid_.w(); ++c) {
        const double px = (static_cast<double>(c) + 0.5) /
                          static_cast<double>(grid_.w()) * grid_.lx();
        const double py = (static_cast<double>(r) + 0.5) /
                          static_cast<double>(grid_.h()) * grid_.ly();
        // Periodic displacement.
        double dx = px - s.x;
        double dy = py - s.y;
        if (dx > grid_.lx() / 2) dx -= grid_.lx();
        if (dx < -grid_.lx() / 2) dx += grid_.lx();
        if (dy > grid_.ly() / 2) dy -= grid_.ly();
        if (dy < -grid_.ly() / 2) dy += grid_.ly();
        const double rr = std::sqrt(dx * dx + dy * dy);
        if (rr > 6.0 * rm) continue;
        // Rankine-like tangential wind profile.
        const double vt =
            s.intensity * (rr / rm) * std::exp(1.0 - rr / rm);
        const double inv = rr > 1e-9 ? 1.0 / rr : 0.0;
        const std::size_t i = static_cast<std::size_t>(r * grid_.w() + c);
        u10[i] += -vt * dy * inv;
        v10[i] += vt * dx * inv;
        const double shape = std::exp(-0.5 * rr * rr / (rm * rm * 4.0));
        mslp[i] -= 0.8 * s.intensity * shape;     // pressure dip
        t2m[i] += 0.05 * s.intensity * shape;     // warm core
        q[i] += 0.04 * s.intensity * shape;       // moist envelope
      }
    }
  }
}

}  // namespace aeris::physics
