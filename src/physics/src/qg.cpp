#include "aeris/physics/qg.hpp"

#include <cmath>
#include <stdexcept>

namespace aeris::physics {

TwoLayerQg::TwoLayerQg(const QgParams& p)
    : p_(p), grid_(p.h, p.w, p.ly, p.lx) {
  for (auto& q : q_) q.assign(static_cast<std::size_t>(grid_.size()), cplx());
  for (auto& s : psi_) s.assign(static_cast<std::size_t>(grid_.size()), cplx());
}

void TwoLayerQg::init_random(const Philox& rng, std::uint64_t stream,
                             double amplitude) {
  // Band-limited random vorticity, Hermitian by construction from a real
  // grid field.
  std::vector<double> field(static_cast<std::size_t>(grid_.size()));
  for (int layer = 0; layer < 2; ++layer) {
    for (std::int64_t i = 0; i < grid_.size(); ++i) {
      field[static_cast<std::size_t>(i)] =
          amplitude *
          static_cast<double>(rng.normal(rng_stream::kPhysicsForcing,
                                         stream * 2 + static_cast<std::uint64_t>(layer),
                                         static_cast<std::uint64_t>(i)));
    }
    q_[static_cast<std::size_t>(layer)] = fft2_real(field, p_.h, p_.w);
    // Keep only large scales so the instability grows organically.
    for (std::int64_t r = 0; r < p_.h; ++r) {
      const std::int64_t mr = r <= p_.h / 2 ? r : p_.h - r;
      for (std::int64_t c = 0; c < p_.w; ++c) {
        const std::int64_t mc = c <= p_.w / 2 ? c : p_.w - c;
        if (mr > 6 || mc > 6) {
          q_[static_cast<std::size_t>(layer)]
            [static_cast<std::size_t>(r * p_.w + c)] = cplx();
        }
      }
    }
  }
  invert();
  t_ = 0.0;
}

void TwoLayerQg::invert_q(const std::array<std::vector<cplx>, 2>& q,
                          std::array<std::vector<cplx>, 2>& psi) const {
  const double b = 0.5 * p_.kd * p_.kd;
  for (auto& s : psi) s.resize(static_cast<std::size_t>(grid_.size()));
  for (std::int64_t r = 0; r < p_.h; ++r) {
    for (std::int64_t c = 0; c < p_.w; ++c) {
      const std::size_t i = static_cast<std::size_t>(r * p_.w + c);
      const double kk = grid_.k2(r, c);
      if (kk == 0.0) {
        psi[0][i] = psi[1][i] = cplx();
        continue;
      }
      const double a = -(kk + b);
      const double det = a * a - b * b;
      psi[0][i] = (a * q[0][i] - b * q[1][i]) / det;
      psi[1][i] = (a * q[1][i] - b * q[0][i]) / det;
    }
  }
}

void TwoLayerQg::invert() { invert_q(q_, psi_); }

void TwoLayerQg::rhs(const std::array<std::vector<cplx>, 2>& q,
                     std::array<std::vector<cplx>, 2>& out) const {
  std::array<std::vector<cplx>, 2> psi;
  invert_q(q, psi);
  const double kd2 = p_.kd * p_.kd;
  for (int layer = 0; layer < 2; ++layer) {
    const double u_mean = layer == 0 ? p_.u_shear : -p_.u_shear;
    // Mean-PV gradient: beta + d/dy of the shear-induced PV.
    const double beta_eff = p_.beta + (layer == 0 ? 1.0 : -1.0) * kd2 * p_.u_shear;
    const auto& qs = q[static_cast<std::size_t>(layer)];
    const auto& ps = psi[static_cast<std::size_t>(layer)];

    std::vector<cplx> jac = grid_.jacobian(ps, qs);
    std::vector<cplx> qx, px;
    grid_.ddx(qs, qx);
    grid_.ddx(ps, px);

    auto& o = out[static_cast<std::size_t>(layer)];
    o.resize(qs.size());
    for (std::int64_t r = 0; r < p_.h; ++r) {
      for (std::int64_t c = 0; c < p_.w; ++c) {
        const std::size_t i = static_cast<std::size_t>(r * p_.w + c);
        const double kk = grid_.k2(r, c);
        cplx v = -jac[i] - u_mean * qx[i] - beta_eff * px[i];
        v -= p_.nu_hyper * kk * kk * kk * kk * qs[i];
        v -= p_.lambda_q * qs[i];
        // Ekman drag on the lower layer: -r * lap(psi2) = +r k^2 psi2.
        if (layer == 1) v += p_.r_bot * kk * ps[i];
        o[i] = v;
      }
    }
  }
}

void TwoLayerQg::step() {
  const double dt = p_.dt;
  std::array<std::vector<cplx>, 2> k1, k2, k3, k4, tmp;
  rhs(q_, k1);
  for (int l = 0; l < 2; ++l) {
    tmp[static_cast<std::size_t>(l)].resize(q_[0].size());
    for (std::size_t i = 0; i < q_[0].size(); ++i) {
      tmp[static_cast<std::size_t>(l)][i] =
          q_[static_cast<std::size_t>(l)][i] +
          0.5 * dt * k1[static_cast<std::size_t>(l)][i];
    }
  }
  rhs(tmp, k2);
  for (int l = 0; l < 2; ++l) {
    for (std::size_t i = 0; i < q_[0].size(); ++i) {
      tmp[static_cast<std::size_t>(l)][i] =
          q_[static_cast<std::size_t>(l)][i] +
          0.5 * dt * k2[static_cast<std::size_t>(l)][i];
    }
  }
  rhs(tmp, k3);
  for (int l = 0; l < 2; ++l) {
    for (std::size_t i = 0; i < q_[0].size(); ++i) {
      tmp[static_cast<std::size_t>(l)][i] =
          q_[static_cast<std::size_t>(l)][i] +
          dt * k3[static_cast<std::size_t>(l)][i];
    }
  }
  rhs(tmp, k4);
  for (int l = 0; l < 2; ++l) {
    for (std::size_t i = 0; i < q_[0].size(); ++i) {
      q_[static_cast<std::size_t>(l)][i] +=
          dt / 6.0 *
          (k1[static_cast<std::size_t>(l)][i] +
           2.0 * k2[static_cast<std::size_t>(l)][i] +
           2.0 * k3[static_cast<std::size_t>(l)][i] +
           k4[static_cast<std::size_t>(l)][i]);
    }
  }
  invert();
  t_ += dt;
}

void TwoLayerQg::run(std::int64_t nsteps) {
  for (std::int64_t i = 0; i < nsteps; ++i) step();
}

std::vector<double> TwoLayerQg::psi(int layer) const {
  return ifft2_real(psi_[static_cast<std::size_t>(layer)], p_.h, p_.w);
}

std::vector<double> TwoLayerQg::u(int layer) const {
  std::vector<cplx> dy;
  grid_.ddy(psi_[static_cast<std::size_t>(layer)], dy);
  auto g = ifft2_real(dy, p_.h, p_.w);
  const double u_mean = layer == 0 ? p_.u_shear : -p_.u_shear;
  for (double& x : g) x = -x + u_mean;
  return g;
}

std::vector<double> TwoLayerQg::v(int layer) const {
  std::vector<cplx> dx;
  grid_.ddx(psi_[static_cast<std::size_t>(layer)], dx);
  return ifft2_real(dx, p_.h, p_.w);
}

std::vector<double> TwoLayerQg::vorticity(int layer) const {
  std::vector<cplx> lap;
  grid_.laplacian(psi_[static_cast<std::size_t>(layer)], lap);
  return ifft2_real(lap, p_.h, p_.w);
}

double TwoLayerQg::total_energy() const {
  // E = 0.5 <|grad psi1|^2 + |grad psi2|^2 + kd^2/2 (psi1 - psi2)^2>
  double e = 0.0;
  const double norm = 1.0 / static_cast<double>(grid_.size());
  const double b = 0.5 * p_.kd * p_.kd;
  for (std::int64_t r = 0; r < p_.h; ++r) {
    for (std::int64_t c = 0; c < p_.w; ++c) {
      const std::size_t i = static_cast<std::size_t>(r * p_.w + c);
      const double kk = grid_.k2(r, c);
      const cplx d = psi_[0][i] - psi_[1][i];
      e += 0.5 * (kk * (std::norm(psi_[0][i] * norm) +
                        std::norm(psi_[1][i] * norm)) +
                  b * std::norm(d * norm));
    }
  }
  return e;
}

double TwoLayerQg::cfl() const {
  double umax = 0.0;
  for (int l = 0; l < 2; ++l) {
    for (double x : u(l)) umax = std::max(umax, std::fabs(x));
    for (double x : v(l)) umax = std::max(umax, std::fabs(x));
  }
  const double dx = p_.lx / static_cast<double>(p_.w);
  return umax * p_.dt / dx;
}

const std::vector<cplx>& TwoLayerQg::q_spec(int layer) const {
  return q_[static_cast<std::size_t>(layer)];
}
std::vector<cplx>& TwoLayerQg::q_spec(int layer) {
  return q_[static_cast<std::size_t>(layer)];
}

}  // namespace aeris::physics
