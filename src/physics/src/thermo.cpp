#include "aeris/physics/thermo.hpp"

#include <algorithm>
#include <cmath>

namespace aeris::physics {
namespace {

/// Advection-diffusion tendency -(u c_x + v c_y) + kappa lap(c) for a grid
/// tracer, with velocities precomputed on the grid.
std::vector<double> adv_diff_tendency(const SpectralGrid& g,
                                      const std::vector<double>& u,
                                      const std::vector<double>& v,
                                      const std::vector<double>& c,
                                      double kappa) {
  std::vector<cplx> cs = fft2_real(c, g.h(), g.w());
  g.dealias(cs);
  std::vector<cplx> cx_s, cy_s, lap_s;
  g.ddx(cs, cx_s);
  g.ddy(cs, cy_s);
  g.laplacian(cs, lap_s);
  const auto cx = ifft2_real(cx_s, g.h(), g.w());
  const auto cy = ifft2_real(cy_s, g.h(), g.w());
  const auto lap = ifft2_real(lap_s, g.h(), g.w());
  std::vector<double> tend(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    tend[i] = -(u[i] * cx[i] + v[i] * cy[i]) + kappa * lap[i];
  }
  return tend;
}

/// One SSP-RK3 (Shu-Osher) advection-diffusion step — stable for the
/// purely oscillatory advection spectrum where forward Euler is not.
void ssp_rk3(const SpectralGrid& g, const std::vector<double>& u,
             const std::vector<double>& v, std::vector<double>& c,
             double kappa, double dt) {
  const std::size_t n = c.size();
  std::vector<double> k1 = adv_diff_tendency(g, u, v, c, kappa);
  std::vector<double> s1(n);
  for (std::size_t i = 0; i < n; ++i) s1[i] = c[i] + dt * k1[i];
  std::vector<double> k2 = adv_diff_tendency(g, u, v, s1, kappa);
  std::vector<double> s2(n);
  for (std::size_t i = 0; i < n; ++i) {
    s2[i] = 0.75 * c[i] + 0.25 * (s1[i] + dt * k2[i]);
  }
  std::vector<double> k3 = adv_diff_tendency(g, u, v, s2, kappa);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = c[i] / 3.0 + 2.0 / 3.0 * (s2[i] + dt * k3[i]);
  }
}

}  // namespace

Thermo::Thermo(const SpectralGrid& grid, const ThermoParams& p)
    : grid_(grid), p_(p) {
  const std::size_t n = static_cast<std::size_t>(grid.size());
  t_.assign(n, 0.0);
  q_.assign(n, 0.0);
  precip_.assign(n, 0.0);
  // Start from the annual-mean equilibrium.
  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      t_[static_cast<std::size_t>(r * grid_.w() + c)] = t_equilibrium(r, 0.25);
    }
  }
  for (std::size_t i = 0; i < n; ++i) q_[i] = 0.6 * qsat(t_[i]);
}

double Thermo::qsat(double t) const {
  return p_.q0 * std::exp(p_.cc_rate * t);
}

double Thermo::t_equilibrium(std::int64_t row, double season) const {
  // "Latitude" = distance from channel center; seasonal term shifts the
  // profile like a solstice swing (sign flips across the channel center).
  const double y = (static_cast<double>(row) + 0.5) /
                       static_cast<double>(grid_.h()) -
                   0.5;  // [-0.5, 0.5]
  const double base =
      p_.t_eq_equator + (p_.t_eq_pole - p_.t_eq_equator) * (2.0 * std::fabs(y));
  const double seasonal =
      p_.seasonal_amp * std::sin(2.0 * M_PI * season) * (y > 0 ? 1.0 : -1.0);
  return base + seasonal;
}

void Thermo::step(const std::vector<cplx>& psi, const std::vector<double>& sst,
                  const std::vector<double>& land_mask, double season,
                  double dt) {
  // Velocities from the streamfunction, computed once per step.
  std::vector<cplx> us, vs;
  grid_.ddy(psi, us);
  grid_.ddx(psi, vs);
  std::vector<double> u = ifft2_real(us, grid_.h(), grid_.w());
  for (double& x : u) x = -x;
  const std::vector<double> v = ifft2_real(vs, grid_.h(), grid_.w());

  ssp_rk3(grid_, u, v, t_, p_.kappa, dt);
  ssp_rk3(grid_, u, v, q_, p_.kappa, dt);

  for (std::int64_t r = 0; r < grid_.h(); ++r) {
    for (std::int64_t c = 0; c < grid_.w(); ++c) {
      const std::size_t i = static_cast<std::size_t>(r * grid_.w() + c);
      double t = t_[i];
      double q = q_[i];

      // Radiative relaxation toward the seasonal equilibrium, tempered by
      // the local ocean surface.
      const double teq = 0.7 * t_equilibrium(r, season) + 0.3 * sst[i];
      t += dt * (teq - t) / p_.tau_rad;

      // Evaporation over ocean (mask == 0), toward saturation at SST.
      if (land_mask[i] < 0.5) {
        const double deficit = std::max(0.0, qsat(sst[i]) - q);
        q += dt * p_.evap_rate * deficit;
      }

      // Condensation of super-saturation, with latent heating.
      const double excess = q - qsat(t);
      double cond = 0.0;
      if (excess > 0.0) {
        cond = excess * std::min(1.0, dt / p_.tau_cond);
        q -= cond;
        t += p_.latent_heat * cond;
      }
      precip_[i] = cond / std::max(dt, 1e-12);
      q = std::max(q, 0.0);
      t_[i] = t;
      q_[i] = q;
    }
  }
}

}  // namespace aeris::physics
