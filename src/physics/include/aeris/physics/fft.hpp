#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace aeris::physics {

using cplx = std::complex<double>;

/// Iterative radix-2 Cooley-Tukey FFT, in place. n must be a power of 2.
void fft_inplace(std::vector<cplx>& a, bool inverse);

/// Returns true if n is a power of two (and > 0).
bool is_pow2(std::int64_t n);

/// 2D FFT of a row-major [h, w] complex field, in place (h, w powers of 2).
/// Forward: no normalization; inverse: divides by h*w.
void fft2_inplace(std::vector<cplx>& field, std::int64_t h, std::int64_t w,
                  bool inverse);

/// Real [h, w] grid -> full complex spectrum (convenience; the spectral
/// core keeps full complex spectra with Hermitian symmetry maintained by
/// construction from real fields).
std::vector<cplx> fft2_real(const std::vector<double>& grid, std::int64_t h,
                            std::int64_t w);

/// Inverse of fft2_real; imaginary residue (roundoff) is dropped.
std::vector<double> ifft2_real(std::vector<cplx> spec, std::int64_t h,
                               std::int64_t w);

}  // namespace aeris::physics
