#pragma once

#include <deque>

#include "aeris/physics/spectral.hpp"

namespace aeris::physics {

/// Slab ocean: SST relaxes to a seasonal meridional profile, diffuses,
/// and carries an ENSO-like mode — a delayed-oscillator index imprinted
/// on an equatorial-Pacific-like SST pattern. The slow (multi-month)
/// oscillation is what gives the learned model S2S-range skill in the
/// Nino-3.4 diagnostic (paper Fig. 7a).
struct OceanParams {
  double sst_pole = 2.0;
  double sst_equator = 29.0;
  double seasonal_amp = 3.0;
  double tau_relax = 60.0;    ///< slow slab relaxation (model time units)
  double kappa = 1e-3;        ///< SST diffusivity

  // Delayed oscillator dE/dt = a E - b E(t - tau_delay) - c E^3.
  double enso_a = 0.9;
  double enso_b = 1.3;
  double enso_c = 0.4;
  double enso_delay = 12.0;   ///< delay in model time units
  double enso_amp = 2.2;      ///< SST amplitude of the mode (deg C)

  // Pattern location (fractions of the domain).
  double patt_center_x = 0.65;
  double patt_width_x = 0.20;
  double patt_width_y = 0.08;
};

class SlabOcean {
 public:
  SlabOcean(const SpectralGrid& grid, const OceanParams& p, double dt,
            double enso_init = 0.5);

  /// Advances one dt; season in [0, 1).
  void step(double season);

  const std::vector<double>& sst() const { return sst_; }
  std::vector<double>& sst() { return sst_; }

  /// The ENSO mode index E(t).
  double enso_index() const { return enso_; }
  void set_enso_index(double e);

  /// Area-mean SST anomaly over the ENSO pattern box — the Nino-3.4
  /// analogue computed exactly the way metrics::nino_index does on model
  /// output.
  double nino_box_mean() const;

  /// Least-squares estimate of the ENSO index from an SST field given the
  /// season (used when initializing forecast members from an analysis —
  /// the delayed history is unobservable from a single snapshot, which is
  /// a genuine predictability limit shared by all forecast systems here).
  double infer_enso_index(const std::vector<double>& sst, double season) const;

  double sst_equilibrium(std::int64_t row, double season) const;
  /// ENSO pattern weight at (row, col) in [0, 1].
  double pattern(std::int64_t row, std::int64_t col) const;

 private:
  const SpectralGrid& grid_;
  OceanParams p_;
  double dt_;
  std::vector<double> sst_;
  double enso_;
  std::deque<double> history_;  ///< E(t - delay) buffer
};

}  // namespace aeris::physics
