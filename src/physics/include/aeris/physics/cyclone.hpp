#pragma once

#include <vector>

#include "aeris/physics/spectral.hpp"
#include "aeris/tensor/rng.hpp"

namespace aeris::physics {

/// Parameterized warm-core tropical cyclones riding on the QG flow —
/// the synthetic stand-in for Hurricane-Laura-class events (paper Fig. 6).
///
/// Storms spawn stochastically over warm tropical ocean, intensify
/// logistically while SST exceeds a threshold (rapid intensification over
/// very warm water), decay over land or cold water, are advected by the
/// large-scale steering flow plus a poleward-westward beta drift, and
/// imprint a Rankine-like vortex (wind, pressure dip, warm core, moisture
/// spiral) onto the output fields.
struct CycloneParams {
  double spawn_rate = 0.25;       ///< expected spawns per model time unit
  double sst_threshold = 26.0;    ///< genesis/intensification SST (deg C)
  double intens_rate = 0.5;       ///< logistic growth rate
  double v_max = 60.0;            ///< intensity cap (m/s-like units)
  double decay_rate = 0.8;        ///< decay over land / cold water
  double core_radius = 0.35;      ///< vortex radius (grid-physical units)
  double beta_drift_u = -0.05;    ///< westward drift
  double beta_drift_v = 0.03;     ///< poleward drift (sign of hemisphere)
  double steering_gain = 1.0;     ///< coupling to the QG steering flow
  double tropics_band = 0.18;     ///< spawn |y|/Ly band around the equator
  double death_intensity = 3.0;   ///< storms below this are removed
};

struct Storm {
  double x = 0.0;       ///< physical position in [0, Lx)
  double y = 0.0;       ///< physical position in [0, Ly)
  double intensity = 0; ///< peak wind
  std::int64_t id = 0;
  std::int64_t age_steps = 0;
};

class CycloneField {
 public:
  CycloneField(const SpectralGrid& grid, const CycloneParams& p,
               std::uint64_t seed);

  /// Advances storms by dt: spawning (Poisson via counter RNG keyed by
  /// step index), advection by (u, v) steering fields, intensity dynamics
  /// against SST and the land mask.
  void step(const std::vector<double>& u_steer,
            const std::vector<double>& v_steer,
            const std::vector<double>& sst,
            const std::vector<double>& land_mask, double dt);

  /// Deterministically seeds one storm (the Fig. 6 case-study hook).
  void seed_storm(double x, double y, double intensity);

  const std::vector<Storm>& storms() const { return storms_; }

  /// Adds the vortex signatures onto grid fields (all [h*w], row-major).
  void imprint(std::vector<double>& u10, std::vector<double>& v10,
               std::vector<double>& mslp, std::vector<double>& t2m,
               std::vector<double>& q) const;

 private:
  double bilinear(const std::vector<double>& f, double x, double y) const;

  const SpectralGrid& grid_;
  CycloneParams p_;
  Philox rng_;
  std::vector<Storm> storms_;
  std::int64_t step_index_ = 0;
  std::int64_t next_id_ = 1;
};

}  // namespace aeris::physics
