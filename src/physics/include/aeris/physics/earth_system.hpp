#pragma once

#include <memory>
#include <string>

#include "aeris/physics/cyclone.hpp"
#include "aeris/physics/ocean.hpp"
#include "aeris/physics/qg.hpp"
#include "aeris/physics/thermo.hpp"
#include "aeris/tensor/tensor.hpp"

namespace aeris::physics {

/// Output variables of the Earth system model, mirroring the paper's set
/// (§VI-B): five surface variables plus atmospheric variables at pressure
/// levels (here a 2-layer subset of the 13 ERA5 levels).
enum class Var : int {
  kT2m = 0,
  kU10,
  kV10,
  kMslp,
  kSst,
  kZ500,   ///< geopotential (upper-layer streamfunction)
  kT850,   ///< lower-troposphere temperature
  kQ700,   ///< specific humidity
  kU850,
  kV850,
  kCount,
};
inline constexpr std::int64_t kNumVars = static_cast<std::int64_t>(Var::kCount);

const char* var_name(Var v);

/// Forcing channels supplied as model inputs (§VI-B: "we also force the
/// model with top-of-atmosphere solar radiation, surface geopotential,
/// and land-sea mask").
inline constexpr std::int64_t kNumForcings = 3;  // solar, orography, land-sea

/// Hours of simulated time per model time unit (calibration constant that
/// labels snapshots as "6-hourly").
inline constexpr double kHoursPerTimeUnit = 24.0;
inline constexpr double kHoursPerYear = 360.0 * 24.0;  ///< idealized year

struct EarthSystemParams {
  QgParams qg{};
  ThermoParams thermo{};
  OceanParams ocean{};
  CycloneParams cyclone{};
  std::uint64_t seed = 0;
  /// Multiplicative perturbation applied to the physics parameters —
  /// nonzero values create the *imperfect-model* ensemble members that
  /// play the role of IFS ENS (DESIGN.md substitutions).
  double param_perturbation = 0.0;
};

/// The full coupled system: two-layer QG atmosphere, thermodynamic
/// tracers, slab ocean with an ENSO mode, parameterized tropical
/// cyclones, seasonal solar forcing, orography and a land-sea mask.
class EarthSystem {
 public:
  explicit EarthSystem(const EarthSystemParams& p);

  /// Spin up from random initial conditions for `steps` model steps
  /// (ensemble member `member` controls all stochastic seeds).
  void spin_up(std::int64_t steps, std::uint64_t member = 0);

  /// Advances by one QG step (params().qg.dt time units).
  void step();
  /// Advances by `hours` of simulated time.
  void advance_hours(double hours);

  double time_hours() const { return time_hours_; }
  /// Aligns the internal clock (season, solar cycle) with an analysis
  /// time when initializing forecast members.
  void set_time_hours(double t) { time_hours_ = t; }
  /// Fraction of the idealized year in [0, 1).
  double season() const;

  /// Current state as a [V, H, W] tensor in the Var order.
  Tensor snapshot() const;
  /// Forcing channels at the current time: [F, H, W] (solar, orography,
  /// land-sea mask).
  Tensor forcings() const;

  /// Perturbs the prognostic state with small-amplitude noise — the
  /// initial-condition perturbation used by the IFS-ENS-like ensemble.
  void perturb(const Philox& rng, std::uint64_t stream, double amplitude);

  /// Overwrites the prognostic state from a snapshot (approximate inverse
  /// of snapshot(); used to initialize physics-model forecasts from
  /// "analysis" fields). Unobserved scales keep their current values.
  void assimilate(const Tensor& state);

  const TwoLayerQg& qg() const { return qg_; }
  TwoLayerQg& qg() { return qg_; }
  const SlabOcean& ocean() const { return *ocean_; }
  SlabOcean& ocean() { return *ocean_; }
  const Thermo& thermo() const { return *thermo_; }
  CycloneField& cyclones() { return *cyclones_; }
  const CycloneField& cyclones() const { return *cyclones_; }
  const std::vector<double>& land_mask() const { return land_mask_; }
  const EarthSystemParams& params() const { return p_; }

  /// Steps per 6h snapshot interval.
  std::int64_t steps_per_6h() const;

 private:
  EarthSystemParams p_;
  TwoLayerQg qg_;
  std::unique_ptr<Thermo> thermo_;
  std::unique_ptr<SlabOcean> ocean_;
  std::unique_ptr<CycloneField> cyclones_;
  std::vector<double> land_mask_;
  std::vector<double> orography_;
  double time_hours_ = 0.0;
};

}  // namespace aeris::physics
