#pragma once

#include "aeris/physics/spectral.hpp"
#include "aeris/tensor/rng.hpp"
#include "aeris/tensor/tensor.hpp"

namespace aeris::physics {

/// Two-layer quasi-geostrophic (QG) model on a doubly periodic beta-plane,
/// pseudo-spectral with RK4 time stepping — the dynamical core of the
/// synthetic "reanalysis" (DESIGN.md: ERA5 substitute). A background
/// vertical shear (U1 = +U, U2 = -U) makes the channel baroclinically
/// unstable, producing midlatitude storm tracks; beta supports Rossby
/// waves whose westward/eastward propagation drives the Hovmöller
/// diagnostics of Fig. 7c.
///
///   q_i = lap(psi_i) + (kd^2/2)(psi_j - psi_i)
///   dq_i/dt = -J(psi_i, q_i) - U_i dq_i/dx - (beta + kd^2 U_i) dpsi_i/dx
///             - delta_{i2} r lap(psi_2) - nu lap^4 q_i
struct QgParams {
  std::int64_t h = 32;      ///< meridional grid points (power of 2)
  std::int64_t w = 64;      ///< zonal grid points (power of 2)
  double ly = 2.0 * M_PI;
  double lx = 4.0 * M_PI;
  // Supercritical Phillips configuration: instability requires
  // u_shear > beta / kd^2 (here 0.08 > 1.5/64 ≈ 0.023).
  double kd = 8.0;          ///< deformation wavenumber
  double beta = 1.5;
  double u_shear = 0.06;    ///< half the layer velocity difference
  double r_bot = 0.3;       ///< bottom (Ekman) friction on layer 2
  double lambda_q = 0.02;   ///< weak Newtonian PV damping (thermal damping
                            ///< proxy); keeps the undamped large-scale
                            ///< baroclinic mode from accumulating energy
  double nu_hyper = 1e-11;  ///< lap^4 hyperviscosity
  double dt = 0.02;
};

class TwoLayerQg {
 public:
  explicit TwoLayerQg(const QgParams& p);

  const QgParams& params() const { return p_; }
  const SpectralGrid& grid() const { return grid_; }

  /// Random small-amplitude initialization (counter RNG; `stream` allows
  /// independent ensemble members from one seed).
  void init_random(const Philox& rng, std::uint64_t stream,
                   double amplitude = 1e-3);

  /// One RK4 step of dt.
  void step();
  void run(std::int64_t nsteps);

  double time() const { return t_; }

  // --- real-space diagnostics (grid [h, w], row-major) ---
  std::vector<double> psi(int layer) const;   ///< streamfunction
  std::vector<double> u(int layer) const;     ///< zonal velocity (-dpsi/dy)
  std::vector<double> v(int layer) const;     ///< meridional velocity
  std::vector<double> vorticity(int layer) const;  ///< lap(psi)
  /// Total (kinetic + available potential) energy; bounded in a healthy
  /// run — the stability test watches this.
  double total_energy() const;
  /// Max |u|,|v| based CFL number for the configured dt.
  double cfl() const;

  /// Direct spectral access (for spectra diagnostics and perturbations).
  const std::vector<cplx>& q_spec(int layer) const;
  std::vector<cplx>& q_spec(int layer);
  /// Recompute psi from q (after external modification of q).
  void invert();

 private:
  void rhs(const std::array<std::vector<cplx>, 2>& q,
           std::array<std::vector<cplx>, 2>& out) const;
  void invert_q(const std::array<std::vector<cplx>, 2>& q,
                std::array<std::vector<cplx>, 2>& psi) const;

  QgParams p_;
  SpectralGrid grid_;
  std::array<std::vector<cplx>, 2> q_;
  std::array<std::vector<cplx>, 2> psi_;
  double t_ = 0.0;
};

}  // namespace aeris::physics
