#pragma once

#include <vector>

#include "aeris/physics/earth_system.hpp"

namespace aeris::physics {

/// Configuration for generating an ERA5-like reanalysis record: spin the
/// coupled system up to statistical equilibrium, then sample every
/// `interval_hours` (the paper's 6-hourly cadence).
struct ReanalysisConfig {
  EarthSystemParams params{};
  std::int64_t spin_up_steps = 2000;
  std::int64_t samples = 400;
  double interval_hours = 6.0;
  std::uint64_t member = 0;  ///< initial-condition stream
};

/// An in-memory reanalysis record (the data module persists/slices it).
struct Reanalysis {
  std::vector<Tensor> states;    ///< [V, H, W] per sample
  std::vector<Tensor> forcings;  ///< [F, H, W] per sample
  std::vector<double> time_hours;
  std::vector<double> nino;      ///< truth ENSO-box SST mean per sample
  std::vector<std::vector<Storm>> storms;  ///< truth cyclone records
};

Reanalysis generate_reanalysis(const ReanalysisConfig& cfg);

/// Records `samples` snapshots from an existing (already spun-up) world,
/// advancing it by interval_hours between samples. The world is left at
/// the time of the *next* would-be sample, so case studies can keep
/// integrating the same trajectory (Fig. 6 seeded-cyclone study).
Reanalysis record(EarthSystem& world, std::int64_t samples,
                  double interval_hours);

}  // namespace aeris::physics
