#pragma once

#include "aeris/physics/spectral.hpp"

namespace aeris::physics {

/// Thermodynamic tracers advected by the QG flow: temperature with
/// radiative relaxation to a seasonally varying equilibrium, and specific
/// humidity with surface evaporation and super-saturation condensation
/// (Clausius-Clapeyron qsat), whose latent heat feeds back on temperature.
/// Condensation gives the heavy-tailed precipitation statistics the
/// paper's noise prior is designed around (§VI-B).
struct ThermoParams {
  double t_eq_pole = -20.0;   ///< equilibrium T at channel edge (deg C)
  double t_eq_equator = 28.0; ///< equilibrium T at channel center
  double seasonal_amp = 6.0;  ///< seasonal swing of the equilibrium profile
  double tau_rad = 8.0;       ///< radiative relaxation time (model units)
  double kappa = 2e-3;        ///< tracer diffusivity
  double evap_rate = 0.4;     ///< surface evaporation coefficient
  double tau_cond = 0.25;     ///< condensation timescale
  double latent_heat = 4.0;   ///< warming per unit condensed moisture
  double q0 = 4.0;            ///< qsat reference (g/kg)
  double cc_rate = 0.06;      ///< Clausius-Clapeyron exponent (per deg C)
};

class Thermo {
 public:
  Thermo(const SpectralGrid& grid, const ThermoParams& p);

  /// Advances T and Q by dt: advection by the spectral streamfunction
  /// `psi`, relaxation toward the seasonal equilibrium (sst provides the
  /// surface boundary), evaporation limited to ocean points (mask == 0),
  /// condensation and latent heating. `season` in [0, 1) is the fraction
  /// of the year.
  void step(const std::vector<cplx>& psi, const std::vector<double>& sst,
            const std::vector<double>& land_mask, double season, double dt);

  const std::vector<double>& temperature() const { return t_; }
  const std::vector<double>& humidity() const { return q_; }
  /// Precipitation rate diagnosed at the last step.
  const std::vector<double>& precip() const { return precip_; }

  /// Saturation humidity at temperature t (deg C).
  double qsat(double t) const;
  /// Equilibrium temperature profile at row r for a given season.
  double t_equilibrium(std::int64_t row, double season) const;

  void set_temperature(std::vector<double> t) { t_ = std::move(t); }
  void set_humidity(std::vector<double> q) { q_ = std::move(q); }

 private:
  const SpectralGrid& grid_;
  ThermoParams p_;
  std::vector<double> t_;
  std::vector<double> q_;
  std::vector<double> precip_;
};

}  // namespace aeris::physics
