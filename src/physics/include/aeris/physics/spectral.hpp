#pragma once

#include "aeris/physics/fft.hpp"

namespace aeris::physics {

/// Spectral operators on a doubly periodic [h, w] grid of physical size
/// (Ly, Lx). Fields are stored as full complex spectra (row-major, FFT
/// ordering); real fields round-trip through fft2_real/ifft2_real.
///
/// This is the numerics substrate of the two-layer QG core. A doubly
/// periodic channel is the standard idealization for beta-plane turbulence
/// studies; the meridional periodicity is compensated by latitude-dependent
/// forcing in the Earth-system wrapper (see DESIGN.md substitutions).
class SpectralGrid {
 public:
  SpectralGrid(std::int64_t h, std::int64_t w, double ly, double lx);

  std::int64_t h() const { return h_; }
  std::int64_t w() const { return w_; }
  std::int64_t size() const { return h_ * w_; }
  double lx() const { return lx_; }
  double ly() const { return ly_; }

  /// Signed wavenumbers for spectral index (r, c).
  double ky(std::int64_t r) const { return ky_[static_cast<std::size_t>(r)]; }
  double kx(std::int64_t c) const { return kx_[static_cast<std::size_t>(c)]; }
  /// |k|^2 at (r, c).
  double k2(std::int64_t r, std::int64_t c) const {
    return ky(r) * ky(r) + kx(c) * kx(c);
  }

  // Spectral-space operators (elementwise on spectra).
  void ddx(const std::vector<cplx>& in, std::vector<cplx>& out) const;
  void ddy(const std::vector<cplx>& in, std::vector<cplx>& out) const;
  void laplacian(const std::vector<cplx>& in, std::vector<cplx>& out) const;
  /// Solves lap(psi) = q (zero-mean gauge: k=0 mode set to 0).
  void inverse_laplacian(const std::vector<cplx>& in,
                         std::vector<cplx>& out) const;

  /// 2/3-rule dealiasing mask applied in place.
  void dealias(std::vector<cplx>& spec) const;

  /// Jacobian J(a, b) = a_x b_y - a_y b_x computed pseudo-spectrally from
  /// spectra; result is a dealiased spectrum.
  std::vector<cplx> jacobian(const std::vector<cplx>& a,
                             const std::vector<cplx>& b) const;

  /// Isotropic (annular) power spectrum of a spectral field: returns
  /// energy per wavenumber bin (bin k covers |k| in [k, k+1) in units of
  /// the fundamental). Used by the Fig. 7 spectra diagnostics.
  std::vector<double> isotropic_spectrum(const std::vector<cplx>& spec) const;

 private:
  std::int64_t h_, w_;
  double ly_, lx_;
  std::vector<double> ky_, kx_;
  std::vector<bool> dealias_mask_;
};

}  // namespace aeris::physics
