#pragma once

#include "aeris/tensor/tensor.hpp"

namespace aeris::core {

/// Swin window partitioning over token maps.
///
/// AERIS keeps a non-hierarchical stack of Swin layers: every layer
/// partitions the (H, W) token grid into non-overlapping win x win
/// windows, and alternating layers first cyclically shift the grid by
/// (-win/2, -win/2) so information propagates across window boundaries
/// (paper §V-B). The longitude axis of the globe is periodic, so the
/// cyclic shift used by the classic Swin implementation is *physically
/// correct* in W; in H (latitude) it wraps too, which is the standard
/// approximation for pole-trimmed ERA5 grids (poles removed, §VI-B).
///
/// Both operations are pure permutations, so their backward passes are the
/// inverse permutations — `window_reverse` with the same shift.

/// Cyclically rolls a [H, W, C] tensor by (dy, dx); positive shifts move
/// content toward larger indices.
Tensor roll2d(const Tensor& x, std::int64_t dy, std::int64_t dx);

/// Partitions x [H, W, C] into [num_windows, win_h*win_w, C] after rolling
/// by (-shift, -shift). H % win_h == 0 and W % win_w == 0 are required.
/// Windows are ordered row-major over the window grid.
Tensor window_partition(const Tensor& x, std::int64_t win_h,
                        std::int64_t win_w, std::int64_t shift);

/// Inverse of window_partition (including undoing the shift).
Tensor window_reverse(const Tensor& windows, std::int64_t h, std::int64_t w,
                      std::int64_t win_h, std::int64_t win_w,
                      std::int64_t shift);

/// Number of windows for a grid.
std::int64_t window_count(std::int64_t h, std::int64_t w, std::int64_t win_h,
                          std::int64_t win_w);

/// Converts a field [V, H, W] (variable-major, the dataset layout) to a
/// token map [H, W, V] (the model layout), and back.
Tensor field_to_tokens(const Tensor& field);
Tensor tokens_to_field(const Tensor& tokens);

}  // namespace aeris::core
