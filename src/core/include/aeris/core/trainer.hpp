#pragma once

#include <span>

#include "aeris/core/edm.hpp"
#include "aeris/core/loss_weights.hpp"
#include "aeris/core/model.hpp"
#include "aeris/core/trigflow.hpp"
#include "aeris/nn/optimizer.hpp"

namespace aeris::core {

/// Training objective selector: AERIS's TrigFlow diffusion, the EDM
/// (GenCast-like) diffusion baseline, or the deterministic MSE baseline.
enum class Objective { kTrigFlow, kEdm, kDeterministic };

/// One supervised pair: previous state, next state, and forcings at the
/// previous time, all in standardized token layout.
struct TrainExample {
  Tensor prev;      ///< [H, W, V]
  Tensor target;    ///< [H, W, V]
  Tensor forcings;  ///< [H, W, F]
};

struct TrainerConfig {
  Objective objective = Objective::kTrigFlow;
  TrigFlowConfig trigflow{};
  EdmConfig edm{};
  LossWeights weights{};          ///< lat/var weights (defaulted if empty)
  nn::LRSchedule schedule{};
  nn::AdamW::Options adam{};
  float ema_half_life = 100'000.0f;  ///< images (paper §VI-B)
  float grad_clip = 0.0f;            ///< 0 disables clipping
  std::uint64_t seed = 0;
};

/// Single-rank reference training loop for an AerisModel. The SWiPe
/// runtime implements the same step distributed across ranks; the
/// equivalence tests compare both against each other.
class Trainer {
 public:
  Trainer(AerisModel& model, const TrainerConfig& cfg);

  /// One optimizer step over a batch. Computes the objective, runs the
  /// explicit backward pass, averages gradients over the batch, applies
  /// AdamW with the scheduled LR, and updates the EMA. Returns the loss.
  /// Throws aeris::NumericalError — naming the first offending tensor and
  /// the step — if the loss or any gradient is NaN/Inf, *before* any
  /// optimizer/EMA state is touched.
  float train_step(std::span<const TrainExample> batch);

  /// Loss only (no grads, no step) — for validation curves.
  float eval_loss(std::span<const TrainExample> batch);

  std::int64_t images_seen() const { return images_seen_; }
  nn::AdamW& optimizer() { return opt_; }
  nn::EMA& ema() { return ema_; }
  const TrainerConfig& config() const { return cfg_; }

  /// Loads EMA weights into the model for inference (paper: "using only
  /// these weights during inference").
  void use_ema_weights() { ema_.copy_to(model_.params()); }

 private:
  float objective_forward_backward(std::span<const TrainExample> batch,
                                   bool compute_grads);

  AerisModel& model_;
  TrainerConfig cfg_;
  nn::AdamW opt_;
  nn::EMA ema_;
  Philox rng_;
  std::int64_t images_seen_ = 0;
};

}  // namespace aeris::core
