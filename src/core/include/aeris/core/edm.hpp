#pragma once

#include <cstdint>

#include "aeris/tensor/rng.hpp"
#include "aeris/tensor/tensor.hpp"

namespace aeris::core {

/// EDM diffusion parameterization (Karras et al. 2022) — the scheme behind
/// GenCast, implemented here as the paper's diffusion *baseline* so
/// TrigFlow-vs-EDM comparisons isolate AERIS's parameterization choice.
///
///   x_sigma = x0 + sigma * n,  n ~ N(0, I)
///   D(x; sigma) = c_skip x + c_out F(c_in x, c_noise(sigma))
/// with the standard preconditioners
///   c_in   = 1 / sqrt(sigma^2 + sigma_d^2)
///   c_skip = sigma_d^2 / (sigma^2 + sigma_d^2)
///   c_out  = sigma sigma_d / sqrt(sigma^2 + sigma_d^2)
///   c_noise= ln(sigma) / 4
/// and loss weight lambda = (sigma^2 + sigma_d^2) / (sigma sigma_d)^2.
struct EdmConfig {
  float sigma_d = 1.0f;
  float p_mean = -1.2f;  ///< log-normal noise prior mean
  float p_std = 1.2f;    ///< log-normal noise prior std
  float sigma_min = 0.02f;
  float sigma_max = 80.0f;
  float rho = 7.0f;  ///< Karras schedule exponent
};

class Edm {
 public:
  explicit Edm(const EdmConfig& cfg) : cfg_(cfg) {}

  const EdmConfig& config() const { return cfg_; }

  /// sigma drawn from the log-normal training prior (counter RNG).
  float sample_sigma(const Philox& rng, std::uint64_t sample_index) const;

  float c_in(float sigma) const;
  float c_skip(float sigma) const;
  float c_out(float sigma) const;
  float c_noise(float sigma) const;
  float loss_weight(float sigma) const;

  /// Karras sigma schedule of n+1 points from sigma_max down to 0.
  std::vector<float> schedule(int n) const;

 private:
  EdmConfig cfg_;
};

}  // namespace aeris::core
