#pragma once

#include <memory>
#include <vector>

#include "aeris/core/swin_block.hpp"
#include "aeris/core/window.hpp"
#include "aeris/nn/embedding.hpp"
#include "aeris/nn/linear.hpp"

namespace aeris::core {

/// Architecture hyper-parameters of an AERIS network (paper Table II uses
/// Dim/Heads/FFN; the grid and window size come from the data resolution —
/// 720x1440 with 30x30 or 60x60 windows at full scale).
struct ModelConfig {
  std::int64_t h = 32;            ///< token rows (pixel rows; patch size 1x1)
  std::int64_t w = 64;            ///< token cols
  std::int64_t in_channels = 8;   ///< x_t + initial condition + forcings
  std::int64_t out_channels = 4;  ///< predicted variables
  std::int64_t dim = 64;          ///< hidden dimension
  std::int64_t depth = 4;         ///< number of Swin layers
  std::int64_t heads = 4;
  std::int64_t ffn_hidden = 128;
  std::int64_t win_h = 8;
  std::int64_t win_w = 8;
  std::int64_t cond_dim = 64;        ///< time-conditioning width
  std::int64_t time_features = 32;   ///< sinusoidal feature count

  std::int64_t tokens_per_window() const { return win_h * win_w; }
  std::int64_t windows() const { return window_count(h, w, win_h, win_w); }
  /// Shift applied by layer `l` (alternating 0 / win/2, paper Fig. 2a).
  std::int64_t shift_for_layer(std::int64_t l) const {
    return (l % 2 == 1) ? win_h / 2 : 0;
  }
};

/// The AERIS backbone: pixel-level embed -> N Swin blocks with alternating
/// shifted windows and AdaLN time conditioning -> norm -> pixel decode
/// (paper Fig. 3). Works on batches of token maps.
///
/// This class is the *single-rank reference implementation*; the SWiPe
/// runtime executes the same blocks sharded across window / sequence /
/// pipeline ranks and is tested for equivalence against this path.
///
/// Weight sharing: modules live behind shared_ptr, so a *shared-backbone
/// variant* (the second constructor) aliases another model's embed / time
/// trunk / blocks / final norm — the same layer objects, hence the same
/// LayerIds and parameter storage — while owning only its decode head.
/// Because no layer reads the grid extent (blocks operate per window), the
/// variant may run a different H x W than its donor; every
/// parameter-bearing dimension must match. Mutable params() then covers
/// the *owned* head alone, so optimizers/EMA over a shared variant train
/// the distilled head and never perturb the donor (backward does still
/// accumulate into the shared modules' grad tensors — harmless for
/// inference, which never reads grads, but don't run a shared variant's
/// backward concurrently with the donor's own training step).
class AerisModel {
 public:
  explicit AerisModel(const ModelConfig& cfg, std::uint64_t seed = 0);

  /// Shared-backbone variant: shares every module of `backbone` except the
  /// decode head (fresh Param storage; initialized as a copy of the
  /// donor's head when out_channels agree, zero otherwise). Throws when a
  /// parameter-bearing dimension differs from the donor's config.
  AerisModel(const ModelConfig& cfg, const AerisModel& backbone);

  /// Copies would silently alias every module (shared_ptr members);
  /// moves are safe — params_ points into the heap-allocated layers.
  AerisModel(const AerisModel&) = delete;
  AerisModel& operator=(const AerisModel&) = delete;
  AerisModel(AerisModel&&) = default;
  AerisModel& operator=(AerisModel&&) = default;

  /// x: [B, H, W, Cin], t: [B] diffusion times. Returns [B, H, W, Cout].
  /// Forward is const: all per-call state lives in `ctx`, so any number of
  /// threads may drive one shared model concurrently, each with its own
  /// ctx.
  Tensor forward(const Tensor& x, const Tensor& t, nn::FwdCtx& ctx) const;

  /// Inference convenience: runs with a throwaway inference-mode ctx
  /// (streaming attention, nothing retained).
  Tensor forward(const Tensor& x, const Tensor& t) const;

  /// Inference convenience with a per-forecast conditioning cache (may be
  /// nullptr) and an explicit compute precision. The cache only engages
  /// when every entry of `t` is one value — always true for solver stages;
  /// per-sample training times fall through to the plain path.
  Tensor forward(const Tensor& x, const Tensor& t, nn::CondCache* cache,
                 nn::InferPrecision prec = nn::InferPrecision::kFp32) const;

  /// dy: [B, H, W, Cout]. Returns dL/dx and accumulates parameter grads,
  /// consuming the activations deposited in `ctx` by the matching forward.
  Tensor backward(const Tensor& dy, nn::FwdCtx& ctx);

  /// Mutable parameters: everything for a primary model, the owned head
  /// alone for a shared-backbone variant (so training/EMA state over a
  /// variant cannot touch the donor's weights).
  const nn::ParamList& params() { return params_; }
  /// Read-only parameter view for const (shared, concurrent) models;
  /// always the full list, shared modules included.
  const nn::ConstParamList& params() const { return const_params_; }
  /// True for a shared-backbone variant (second constructor).
  bool shares_backbone() const { return shares_backbone_; }
  const ModelConfig& config() const { return cfg_; }
  std::int64_t param_count() const;

  /// Analytic parameter count for a config (validated in tests against a
  /// constructed model; used by the perf model for Table II).
  static std::int64_t analytic_param_count(const ModelConfig& cfg);

  /// Blocks are exposed so the pipeline-parallel runtime can host one
  /// stage's worth of layers without duplicating construction logic.
  SwinBlock& block(std::int64_t i) { return *blocks_[static_cast<std::size_t>(i)]; }
  const SwinBlock& block(std::int64_t i) const {
    return *blocks_[static_cast<std::size_t>(i)];
  }
  nn::TimeEmbedding& time_embedding() { return *time_embed_; }

 private:
  Tensor partition_batch(const Tensor& x, std::int64_t shift) const;
  Tensor reverse_batch(const Tensor& windows, std::int64_t batch,
                       std::int64_t shift) const;

  ModelConfig cfg_;
  Tensor posenc_;  // [H, W]
  std::shared_ptr<nn::Linear> embed_;
  std::shared_ptr<nn::TimeEmbedding> time_embed_;
  std::vector<std::shared_ptr<SwinBlock>> blocks_;
  std::shared_ptr<nn::RMSNorm> final_norm_;
  std::shared_ptr<nn::Linear> head_;
  bool shares_backbone_ = false;
  nn::ParamList params_;
  nn::ConstParamList const_params_;
  nn::LayerId id_;
};

}  // namespace aeris::core
