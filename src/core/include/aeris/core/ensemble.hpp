#pragma once

#include <optional>

#include "aeris/core/forecaster.hpp"

namespace aeris::core {

/// Execution knobs for ParallelEnsembleEngine. Neither affects results:
/// every (batch, threads) combination is bitwise-identical to the serial
/// DiffusionForecaster reference.
struct EnsembleOptions {
  /// Members advanced per stacked model call (the E of one [E, H, W, C]
  /// forward). Larger batches amortize per-call overhead and feed the
  /// GEMMs taller matrices.
  std::int64_t batch = 4;
  /// Worker threads sharing the one read-only model. Each thread owns a
  /// disjoint group of member chunks and runs its kernels inline (see
  /// SerialRegionGuard), so throughput scales across members instead of
  /// within one member's kernels.
  int threads = 1;
};

/// One member's slot in a cross-request stacked solver step: the serving
/// front-end packs members of unrelated forecast requests into a single
/// [E, H, W, C] solve. `prev` is the member's current state (conditioning
/// for the residual solve), `forcings` its own forcing field, and `noise`
/// reproduces the member's serial streams — MemberKey{request seed,
/// member * 4096 + step} makes slot results bitwise-identical to the
/// serial DiffusionForecaster with that seed, regardless of packing.
struct MemberSlot {
  const Tensor* prev = nullptr;      ///< [H, W, V]
  const Tensor* forcings = nullptr;  ///< [H, W, F]
  MemberKey noise{};
};

/// Batched, optionally multi-threaded ensemble forecaster (the paper's
/// Fig. 1c ensemble inference, engineered for throughput): E members'
/// diffusion solves are stacked through the batch dimension so each solver
/// stage is one network call, and member groups are distributed across
/// threads that share a single read-only AerisModel.
///
/// Determinism contract: ensemble_rollout returns bitwise-identical
/// trajectories to DiffusionForecaster::ensemble_rollout constructed with
/// the same model/configs/seed, for every batch size and thread count.
/// This holds because (a) member trajectories never interact, (b) the
/// samplers' schedules are state-independent so stacked members share them
/// exactly, (c) all stochastic draws are keyed by (member, step) in the
/// counter-based RNG, and (d) every kernel computes each output row
/// independently of batch shape and thread placement.
class ParallelEnsembleEngine {
 public:
  ParallelEnsembleEngine(const AerisModel& model, const TrigFlowConfig& tf,
                         const TrigSamplerConfig& sampler, std::uint64_t seed);
  /// EDM-parameterized (GenCast-like baseline) engine.
  ParallelEnsembleEngine(const AerisModel& model, const EdmConfig& edm,
                         const EdmSamplerConfig& sampler, std::uint64_t seed);
  /// Few-step consistency engine: `model` is a distilled student and the
  /// default sampler kind is kConsistency.
  ParallelEnsembleEngine(const AerisModel& model, const TrigFlowConfig& tf,
                         const ConsistencySamplerConfig& sampler,
                         std::uint64_t seed);

  /// Ensemble of rollouts; result[m][s] is member m at step s (matching
  /// DiffusionForecaster::ensemble_rollout). `forcings_at` may be called
  /// concurrently from worker threads and must be thread-safe (a pure
  /// function of the step is ideal).
  std::vector<std::vector<Tensor>> ensemble_rollout(
      const Tensor& init, const ForcingFn& forcings_at, std::int64_t n_steps,
      std::int64_t members, const EnsembleOptions& opts = {}) const;

  /// Cross-request stacking hook (used by serving::ForecastServer, and by
  /// ensemble_rollout's own chunks): advances an arbitrary pack of members
  /// one forecast step through a single stacked solve and returns the next
  /// state per slot. Each slot carries its own conditioning and noise key,
  /// so members of different requests — different seeds, different
  /// autoregressive steps — may share the call; the solver t-schedule
  /// depends only on the config, never on the state, so it is common to
  /// the pack. `solver_steps_override > 0` substitutes the configured ODE
  /// step count (graceful-degradation mode); 0 keeps the config.
  ///
  /// Every slot is computed independently of its batch-mates (kernels
  /// split only per-member output rows and windows never span the batch
  /// dim), so a non-finite member cannot poison the others, and each
  /// slot's result is bitwise-identical to the serial forecast_step with
  /// the same seed/key/solver steps.
  ///
  /// `cache` is an optional caller-owned conditioning cache (one per
  /// driving thread — engine worker, server worker); nullptr falls back to
  /// a call-local cache when caching is enabled. Degraded packs re-key
  /// automatically: an override changes the schedule's t values and with
  /// them every cache key.
  /// `kind` selects the sampler family for this pack: nullopt runs the
  /// engine's default (sampler_kind()); kConsistency requires either a
  /// consistency-constructed engine or an attached student
  /// (set_consistency) and runs the few-step sampler instead of the ODE
  /// solve — the serving DegradePolicy uses exactly this to shed load
  /// before cutting members. `solver_steps_override` then overrides the
  /// consistency evaluation count instead of the ODE step count.
  std::vector<Tensor> step_pack(std::span<const MemberSlot> pack,
                                int solver_steps_override = 0,
                                nn::CondCache* cache = nullptr,
                                std::optional<SamplerKind> kind =
                                    std::nullopt) const;

  /// Attaches a distilled student to a TrigFlow teacher engine, making
  /// kConsistency packs servable side by side with the teacher path.
  /// `student` must share the teacher's conditioning contract (in/out
  /// channels, grid); nullptr detaches (consistency packs then run the
  /// engine's own model — meaningful only if that model *is* a student).
  /// Call before sharing the engine across threads.
  /// AERIS_SAMPLER=consistency additionally makes the student the engine's
  /// *default* path (requests that don't name a sampler get the few-step
  /// solve), mirroring the AERIS_INFER_PRECISION opt-in idiom; any other
  /// value leaves the teacher ODE as the default.
  void set_consistency(const AerisModel* student,
                       const ConsistencySamplerConfig& cfg) {
    student_ = student;
    cons_sampler_ = cfg;
    has_consistency_ = true;
    if (param_ == Parameterization::kTrigFlow &&
        sampler_kind_from_env() == SamplerKind::kConsistency) {
      default_kind_ = SamplerKind::kConsistency;
    }
  }
  /// True when kConsistency packs are servable.
  bool has_consistency() const {
    return has_consistency_ && param_ == Parameterization::kTrigFlow;
  }
  /// Default sampler family (what nullopt `kind` resolves to).
  SamplerKind sampler_kind() const { return default_kind_; }

  /// Inference compute precision for the stacked model forwards. Defaults
  /// from AERIS_INFER_PRECISION (fp32 unless "bf16"). Set before sharing
  /// the engine across threads; the pre-rounded bf16 weights themselves
  /// are built once and shared read-only.
  void set_infer_precision(nn::InferPrecision p) { precision_ = p; }
  nn::InferPrecision infer_precision() const { return precision_; }

  Parameterization parameterization() const { return param_; }
  /// The shared read-only model (exposed so the serving layer can validate
  /// request shapes against the config).
  const AerisModel& model() const { return model_; }
  /// Configured solver steps per forecast step of the *default* sampler
  /// kind (network evaluations for a consistency-default engine).
  int solver_steps() const { return solver_steps(default_kind_); }
  /// Same, for an explicit sampler family.
  int solver_steps(SamplerKind kind) const {
    if (kind == SamplerKind::kConsistency) return cons_sampler_.steps;
    return param_ == Parameterization::kTrigFlow ? trig_sampler_.steps
                                                 : edm_sampler_.steps;
  }

 private:
  /// Advances members [m0, m0+states.size()) one forecast step in lockstep
  /// through a single stacked solve; returns the next states.
  std::vector<Tensor> step_chunk(const std::vector<Tensor>& states,
                                 const Tensor& forcings, std::int64_t m0,
                                 std::int64_t step,
                                 nn::CondCache* cache) const;

  const AerisModel& model_;
  Parameterization param_;
  SamplerKind default_kind_ = SamplerKind::kDpmSolver;
  TrigFlow trigflow_{TrigFlowConfig{}};
  TrigSamplerConfig trig_sampler_{};
  Edm edm_{EdmConfig{}};
  EdmSamplerConfig edm_sampler_{};
  ConsistencySamplerConfig cons_sampler_{};
  const AerisModel* student_ = nullptr;  ///< consistency model; null = model_
  bool has_consistency_ = false;
  Philox rng_;
  nn::InferPrecision precision_ = nn::infer_precision_from_env();
};

}  // namespace aeris::core
