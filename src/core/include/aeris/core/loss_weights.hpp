#pragma once

#include "aeris/tensor/tensor.hpp"

namespace aeris::core {

/// Physically weighted loss (paper Eq. 2): a latitude weight alpha(s)
/// accounting for the non-uniform area of the re-gridded sphere, and a
/// per-variable weight kappa(v) emphasizing near-surface variables and
/// weighting atmospheric variables by pressure level.
struct LossWeights {
  Tensor lat;  ///< [H], mean 1
  Tensor var;  ///< [V], mean 1

  /// Combined weight for (row, variable).
  float at(std::int64_t row, std::int64_t v) const {
    return lat[row] * var[v];
  }
};

/// cos(latitude) weights for an H-row grid with poles removed: row r sits
/// at latitude theta_r = -90 + (r + 0.5) * 180 / H degrees. Normalized to
/// mean 1 (the WeatherBench 2 convention).
Tensor latitude_weights(std::int64_t h);

/// Pressure-proportional weights for a set of levels (hPa), normalized to
/// mean 1 — near-surface levels get the largest weight, as in GraphCast /
/// Stormer-style recipes the paper cites for Eq. 2.
Tensor pressure_level_weights(std::span<const double> levels_hpa);

/// Uniform weights (mean 1) of length n.
Tensor uniform_weights(std::int64_t n);

/// Weighted MSE over token fields [B, H, W, V]:
///   L = mean_{b,h,w,v} lat[h] * var[v] * (pred - target)^2
/// If `grad` is non-null it receives dL/dpred.
float weighted_mse(const Tensor& pred, const Tensor& target,
                   const LossWeights& w, Tensor* grad = nullptr);

/// Plain latitude-weighted MSE (var weights uniform).
float lat_weighted_mse(const Tensor& pred, const Tensor& target,
                       const Tensor& lat_weights);

}  // namespace aeris::core
