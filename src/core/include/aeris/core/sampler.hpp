#pragma once

#include <functional>
#include <span>

#include "aeris/core/edm.hpp"
#include "aeris/core/trigflow.hpp"

namespace aeris::core {

/// Network evaluation closed over the conditioning (previous state and
/// forcings): for TrigFlow it returns the *velocity* sigma_d * F(x/sigma_d, t);
/// for EDM it returns the raw network output F(x_in, c_noise).
using DenoiserFn = std::function<Tensor(const Tensor& x, float t)>;

/// TrigFlow probability-flow ODE sampler (paper §VI-B "Inference"):
/// a second-order, two-stage (midpoint, DPMSolver++(2S)-class) solver with
/// a log-uniform schedule in t matching the training prior, plus a
/// trigonometric Langevin-like churn that temporarily re-noises the state
/// to improve sample quality and ensemble spread.
struct TrigSamplerConfig {
  int steps = 10;          ///< ODE steps (paper: 10)
  float churn = 0.0f;      ///< fraction of each step re-noised (0 = plain ODE)
  float sigma_min = 0.02f; ///< inference schedule bounds (tan t range)
  float sigma_max = 80.0f;
};

/// Integrates the PF-ODE from pure noise to a sample. `member` selects the
/// ensemble member: all stochastic draws are keyed by (member, step) in
/// the counter RNG, so ensembles are reproducible and members independent.
Tensor sample_trigflow(const DenoiserFn& velocity, const Shape& shape,
                       const TrigFlow& tf, const TrigSamplerConfig& cfg,
                       const Philox& rng, std::uint64_t member);

/// EDM / GenCast-style sampler: Karras schedule + Heun's second order
/// method over the denoised estimate D(x; sigma).
struct EdmSamplerConfig {
  int steps = 10;
};

/// Sampler family a forecaster / engine / serving request runs: the
/// multi-step DPMSolver++(2S)-class PF-ODE solvers above (teacher path),
/// or the few-step consistency sampler of a distilled student (Swift-style
/// follow-on to AERIS: 1-4 network evaluations per forecast step).
enum class SamplerKind { kDpmSolver, kConsistency };

/// Default sampler kind from AERIS_SAMPLER ("consistency" selects
/// kConsistency; anything else — including unset — keeps kDpmSolver).
SamplerKind sampler_kind_from_env();

/// Few-step consistency sampler configuration. A consistency model maps
/// any point of the PF-ODE trajectory straight to its endpoint:
///   f(x_t, t) = cos(t) x_t - sin(t) sigma_d F(x_t / sigma_d, t),
/// so one network evaluation replaces the whole ODE integration. Multistep
/// sampling re-noises the estimate to intermediate times (fresh noise) and
/// re-applies f, trading evaluations for sample quality exactly like
/// consistency-model literature prescribes.
struct ConsistencySamplerConfig {
  int steps = 2;           ///< network evaluations per sample (1-4 typical)
  float sigma_min = 0.02f; ///< re-noising schedule bounds (tan t range)
  float sigma_max = 80.0f;
};

Tensor sample_edm(const DenoiserFn& network, const Shape& shape,
                  const Edm& edm, const EdmSamplerConfig& cfg,
                  const Philox& rng, std::uint64_t member);

/// Identifies one member's noise streams in a batched solve: `seed` is the
/// Philox seed (per forecaster / per serving request) and `key` is the
/// serial sampler `member` argument (the forecasters use
/// member * 4096 + step). Splitting the seed out lets members of
/// *different* requests — each reproducing its own serial reference —
/// share a single stacked solver call.
struct MemberKey {
  std::uint64_t seed = 0;
  std::uint64_t key = 0;
};

/// Batched samplers: E ensemble members advance in lockstep through one
/// stacked state [E, ...shape], so every solver stage is a single network
/// call over the batch dimension instead of E separate calls.
///
/// Bitwise-identical to E serial sample_* calls with the same keys: the
/// t/sigma schedule (and the churn rotation angle) depend only on the
/// config, never on the state, so members share them exactly; every
/// elementwise update touches each member's slab independently; and the
/// counter RNG fills member e's slab with exactly the draws the serial
/// call keyed by member_keys[e] would produce. The network closure must
/// preserve this by treating the leading dim as a batch of independent
/// samples (true of AerisModel by construction).
///
/// `velocity`/`network` receive the stacked [E, ...shape] state and return
/// the stacked result; `member_keys[e]` is the serial `member` argument of
/// slab e. Returns [E, ...shape].
Tensor sample_trigflow_batched(const DenoiserFn& velocity, const Shape& shape,
                               const TrigFlow& tf, const TrigSamplerConfig& cfg,
                               const Philox& rng,
                               std::span<const std::uint64_t> member_keys);

Tensor sample_edm_batched(const DenoiserFn& network, const Shape& shape,
                          const Edm& edm, const EdmSamplerConfig& cfg,
                          const Philox& rng,
                          std::span<const std::uint64_t> member_keys);

/// Per-member-seed variants (cross-request stacking): slab e draws from
/// Philox(members[e].seed) keyed by members[e].key — bitwise-identical to
/// a serial sample_* call with that seed and key. The single-seed
/// overloads above delegate here with a shared seed.
Tensor sample_trigflow_batched(const DenoiserFn& velocity, const Shape& shape,
                               const TrigFlow& tf, const TrigSamplerConfig& cfg,
                               std::span<const MemberKey> members);

Tensor sample_edm_batched(const DenoiserFn& network, const Shape& shape,
                          const Edm& edm, const EdmSamplerConfig& cfg,
                          std::span<const MemberKey> members);

/// The t (or sigma) schedule used by sample_trigflow, exposed for tests
/// and diagnostics: steps+1 values, strictly decreasing, last element 0.
std::vector<float> trigflow_schedule(const TrigFlow& tf,
                                     const TrigSamplerConfig& cfg);

/// Evaluation times of the few-step consistency sampler: exactly
/// cfg.steps values, strictly decreasing, starting at atan(sigma_max /
/// sigma_d). Unlike trigflow_schedule there is no trailing 0 — the
/// consistency function itself jumps to t = 0, so every entry is a network
/// evaluation time, spaced log-uniformly in sigma with spacing
/// (lmin - lmax) / steps so the last evaluation keeps a meaningful noise
/// level (steps = 2 re-noises at sqrt(sigma_max * sigma_min), not at
/// sigma_min).
std::vector<float> consistency_schedule(const TrigFlow& tf,
                                        const ConsistencySamplerConfig& cfg);

/// Few-step consistency sampling of a distilled TrigFlow student: start
/// from pure noise at t_0, apply f once, then alternate re-noising to the
/// next schedule time (fresh member-keyed noise) with another application
/// of f. `velocity` is the same closure the TrigFlow sampler takes
/// (sigma_d * F(x / sigma_d, t)); the consistency estimate is
/// cos(t) x - sin(t) velocity(x, t). Noise keying matches the other
/// samplers: all draws are (member, evaluation index) keyed in the counter
/// RNG, so members are independent and reproducible.
Tensor sample_consistency(const DenoiserFn& velocity, const Shape& shape,
                          const TrigFlow& tf,
                          const ConsistencySamplerConfig& cfg,
                          const Philox& rng, std::uint64_t member);

/// Batched / per-member-seed variants, bitwise-identical to E serial
/// sample_consistency calls with the same keys (same contract as the
/// batched samplers above: the schedule is state-independent, every
/// elementwise update touches one member slab, and the counter RNG fills
/// slab e with exactly the serial draws of member_keys[e]).
Tensor sample_consistency_batched(const DenoiserFn& velocity,
                                  const Shape& shape, const TrigFlow& tf,
                                  const ConsistencySamplerConfig& cfg,
                                  const Philox& rng,
                                  std::span<const std::uint64_t> member_keys);

Tensor sample_consistency_batched(const DenoiserFn& velocity,
                                  const Shape& shape, const TrigFlow& tf,
                                  const ConsistencySamplerConfig& cfg,
                                  std::span<const MemberKey> members);

}  // namespace aeris::core
