#pragma once

#include "aeris/nn/adaln.hpp"
#include "aeris/nn/attention.hpp"
#include "aeris/nn/rmsnorm.hpp"
#include "aeris/nn/swiglu.hpp"

namespace aeris::core {

/// One AERIS transformer block (paper §V-B, Fig. 3):
///
///   mod_a, mod_f = AdaLN heads(cond)                    [per-layer linears]
///   h  = x + gate_a ⊙ Attn( modulate(RMSNorm(x), mod_a) )
///   y  = h + gate_f ⊙ SwiGLU( modulate(RMSNorm(h), mod_f) )
///
/// pre-RMSNorm replaces LayerNorm, SwiGLU replaces the single-linear MLP,
/// q/k carry axial 2D RoPE (inside WindowAttention), and the diffusion
/// time conditioning enters through adaptive-layer-norm modulation.
///
/// The block operates on *already partitioned* windows [B_win, T, C]; the
/// owning model (or pipeline stage) performs the partition/shift. This is
/// the factorization that Window Parallelism exploits: a block never needs
/// to see windows other than its own.
class SwinBlock {
 public:
  struct Config {
    std::int64_t dim = 64;
    std::int64_t heads = 4;
    std::int64_t ffn_hidden = 128;
    std::int64_t win_h = 4;
    std::int64_t win_w = 4;
    std::int64_t cond_dim = 32;
  };

  SwinBlock(std::string name, const Config& cfg);

  void init(const Philox& rng, std::uint64_t index);

  /// x: [B_win, T, C]; cond: [B_samples, cond_dim] with
  /// B_win = B_samples * windows_per_sample.
  Tensor forward(const Tensor& x, const Tensor& cond,
                 std::int64_t windows_per_sample, nn::FwdCtx& ctx) const;

  /// Returns dx; accumulates parameter grads and adds this block's
  /// conditioning gradient into `dcond`.
  Tensor backward(const Tensor& dy, Tensor& dcond, nn::FwdCtx& ctx);

  void collect_params(nn::ParamList& out);
  void collect_params(nn::ConstParamList& out) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  nn::AdaLNHead adaln_attn_;
  nn::AdaLNHead adaln_ffn_;
  nn::RMSNorm norm1_;
  nn::RMSNorm norm2_;
  nn::WindowAttention attn_;
  nn::SwiGLU ffn_;
  nn::LayerId id_;
};

}  // namespace aeris::core
