#pragma once

#include <span>
#include <vector>

#include "aeris/core/model.hpp"
#include "aeris/core/sampler.hpp"
#include "aeris/core/trainer.hpp"
#include "aeris/nn/cond_cache.hpp"
#include "aeris/nn/optimizer.hpp"

namespace aeris::core {

/// Consistency-distillation hyper-parameters. The teacher discretization is
/// expressed as a TrigSamplerConfig because the distiller walks exactly the
/// inference schedule of the teacher sampler (trigflow_schedule): the
/// student learns to jump from any of its N+1 grid points straight to the
/// clean endpoint, which is what makes 1-4 evaluation sampling work.
struct DistillConfig {
  TrigFlowConfig trigflow{};
  /// Teacher PF-ODE discretization: `teacher.steps` intervals of the
  /// inference schedule (churn is ignored — targets are plain ODE steps).
  TrigSamplerConfig teacher{};
  LossWeights weights{};  ///< lat/var weights (defaulted if empty)
  nn::LRSchedule schedule{};
  nn::AdamW::Options adam{};
  float ema_half_life = 100'000.0f;
  float grad_clip = 0.0f;
  std::uint64_t seed = 0;
  /// Start the student from the teacher weights (standard consistency
  /// distillation; false keeps the student's own initialization).
  bool init_from_teacher = true;
};

/// Swift-style consistency distillation of a trained TrigFlow diffusion
/// model (sCM discrete-time objective over the TrigFlow parameterization).
///
/// The student shares the AerisModel architecture and the teacher's
/// conditioning contract (input = [x_t / sigma_d, prev, forcings]); it is
/// trained so that the consistency function
///   f(x_t, t) = cos(t) x_t - sin(t) sigma_d F_student(x_t / sigma_d, t)
/// maps every point of the teacher's PF-ODE trajectory to the trajectory
/// endpoint x_0. Each step draws (t, s) as adjacent times of the teacher
/// discretization, forms x_t by forward diffusion of the data residual,
/// runs ONE frozen-teacher midpoint ODE step x_t -> x_s (the same
/// two-stage update sample_trigflow uses), and regresses
///   f_student(x_t, t)  toward  stopgrad[ f_ema(x_s, s) ]
/// where f_ema is the student's own EMA (the boundary f(x, 0) = x makes
/// the target exact at s = 0, and self-consistency propagates it up the
/// trajectory). Loss and gradients reuse the Trainer's latitude/variable
/// weighting and per-sample gradient-scale machinery.
///
/// Philox contract: the stage index is drawn from
/// (kDistillStage, images_seen + i) and the diffusion noise from
/// (kDiffusionNoise, images_seen + i) — both keyed only by the global
/// sample index, so SWiPe ranks sharing the seed regenerate identical
/// draws regardless of batch partitioning, exactly like Trainer.
///
/// Conditioning caches: the teacher is frozen, so its CondCache stays at
/// generation 0 and its rows (keyed by the few discrete schedule times)
/// stay valid for the distiller's whole life. The EMA target network's
/// weights move every optimizer step, so its cache generation is bumped
/// after each update — stale rows stop being hit without a clear.
class ConsistencyDistiller {
 public:
  /// `student` is trained in place; `teacher` must share its architecture
  /// (same param count per tensor) and is never mutated.
  ConsistencyDistiller(AerisModel& student, const AerisModel& teacher,
                       const DistillConfig& cfg);

  /// One distillation step over a batch (AdamW + EMA, numerically guarded
  /// exactly like Trainer::train_step). Returns the consistency loss.
  float distill_step(std::span<const TrainExample> batch);

  /// Loss only (no grads, no step) — for validation curves.
  float eval_loss(std::span<const TrainExample> batch);

  std::int64_t images_seen() const { return images_seen_; }
  nn::AdamW& optimizer() { return opt_; }
  nn::EMA& ema() { return ema_; }
  const DistillConfig& config() const { return cfg_; }

  /// Teacher discretization times (steps+1 values, last 0) — exposed for
  /// tests.
  const std::vector<float>& teacher_times() const { return ts_; }

  /// Loads EMA weights into the student for inference.
  void use_ema_weights() { ema_.copy_to(student_.params()); }

 private:
  float objective_forward_backward(std::span<const TrainExample> batch,
                                   bool compute_grads);
  /// velocity(x, t) = sigma_d * F_model(x / sigma_d, t) at batch 1 for a
  /// frozen model, with that model's conditioning cache.
  Tensor frozen_velocity(const AerisModel& model, nn::CondCache& cache,
                         const Tensor& x, float t, const Tensor& prev,
                         const Tensor& forcings) const;

  AerisModel& student_;
  const AerisModel& teacher_;
  AerisModel target_;  ///< EMA target network f_ema (weights refreshed per step)
  DistillConfig cfg_;
  nn::AdamW opt_;
  nn::EMA ema_;
  Philox rng_;
  std::vector<float> ts_;  ///< teacher discretization (steps+1, last 0)
  nn::CondCache teacher_cache_;
  nn::CondCache target_cache_;
  std::int64_t images_seen_ = 0;
};

}  // namespace aeris::core
