#pragma once

#include <cstdint>

#include "aeris/tensor/rng.hpp"
#include "aeris/tensor/tensor.hpp"

namespace aeris::core {

/// TrigFlow diffusion parameterization (paper §VI-B, following Lu & Song
/// 2024), which unifies EDM and flow matching under a v-prediction target:
///
///   x_t = cos(t) x_0 + sin(t) z,      z ~ N(0, sigma_d^2 I)
///   v_t = cos(t) z   - sin(t) x_0
///   t   = arctan(e^tau / sigma_d),    tau ~ LogUniform[sigma_min, sigma_max]
///
/// The model f_theta(x_t, t) = F_theta(x_t / sigma_d, t) is trained to
/// regress v_t; the learned probability-flow ODE is
/// dx/dt = sigma_d F_theta(x/sigma_d, t).
struct TrigFlowConfig {
  float sigma_d = 1.0f;     ///< data standard deviation (z-scored data)
  float sigma_min = 0.2f;   ///< training prior lower bound (paper value)
  float sigma_max = 500.0f; ///< training prior upper bound (paper value)
};

class TrigFlow {
 public:
  explicit TrigFlow(const TrigFlowConfig& cfg) : cfg_(cfg) {}

  const TrigFlowConfig& config() const { return cfg_; }

  /// Diffusion time for training sample `sample_index`, drawn from the
  /// log-uniform prior. Uses the counter-based RNG so that *every rank in
  /// a model-parallel group regenerates the same t for the same sample*
  /// (the shared-seed requirement of §VI-B) while data-parallel replicas,
  /// which see different sample indices, get independent draws.
  float sample_time(const Philox& rng, std::uint64_t sample_index) const;

  /// Diffusion time from a uniform u in [0,1] (deterministic form).
  float time_from_uniform(float u) const;

  /// x_t = cos(t) x0 + sin(t) z.
  Tensor interpolate(const Tensor& x0, const Tensor& z, float t) const;

  /// v_t = cos(t) z - sin(t) x0 (the regression target).
  Tensor velocity_target(const Tensor& x0, const Tensor& z, float t) const;

  /// Given the network output F (already scaled by the caller's forward of
  /// x_t / sigma_d) computes the elementwise residual sigma_d*F - v_t used
  /// by the loss.
  Tensor residual(const Tensor& f, const Tensor& v_t) const;

  float t_min() const;  ///< arctan(sigma_min / sigma_d)
  float t_max() const;  ///< arctan(sigma_max / sigma_d)

 private:
  TrigFlowConfig cfg_;
};

}  // namespace aeris::core
