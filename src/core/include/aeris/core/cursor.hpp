#pragma once

#include <cstdint>

#include "aeris/core/sampler.hpp"

namespace aeris::core {

/// Resumable per-member rollout cursor: the minimal portable description
/// of "the next forecast step of ensemble member `member` of the request
/// seeded with `seed`". Because every stochastic draw of a forecast step
/// is keyed by (seed, member * kStepsPerMember + step) in the counter-based
/// Philox RNG — never by wall clock, host, thread, or solver history — a
/// cursor can be checked out, executed on any rank of a cluster (or any
/// worker thread of a single process), lost to a worker death, and
/// re-executed elsewhere from the last committed step with bitwise-identical
/// results. This is the contract the distributed serving tier's
/// requeue-on-worker-loss story rests on.
struct MemberCursor {
  std::uint64_t seed = 0;    ///< request seed (pre-salt)
  std::int64_t member = 0;   ///< ensemble member index within the request
  std::int64_t step = 0;     ///< next forecast step to compute
  bool salted = false;       ///< quarantine retry: use the salted stream

  /// Key stride between consecutive members: member m's steps occupy keys
  /// [m * kStepsPerMember, (m + 1) * kStepsPerMember), so trajectories up
  /// to 4096 steps never collide across members (shared by
  /// DiffusionForecaster and ParallelEnsembleEngine).
  static constexpr std::uint64_t kStepsPerMember = 4096;

  /// XORed into the seed for a quarantined member's retry: a fresh,
  /// reproducible Philox stream disjoint from every un-salted request seed
  /// in practice.
  static constexpr std::uint64_t kQuarantineSeedSalt = 0xA1B2C3D4E5F60718ull;

  /// The noise-stream identity of this cursor's step. Bitwise reproducible
  /// anywhere: two executors given equal cursors draw equal streams.
  MemberKey noise_key() const {
    const std::uint64_t s = salted ? (seed ^ kQuarantineSeedSalt) : seed;
    return MemberKey{s, static_cast<std::uint64_t>(member) * kStepsPerMember +
                            static_cast<std::uint64_t>(step)};
  }

  friend bool operator==(const MemberCursor&, const MemberCursor&) = default;
};

}  // namespace aeris::core
