#pragma once

#include <functional>
#include <vector>

#include "aeris/core/model.hpp"
#include "aeris/core/sampler.hpp"
#include "aeris/nn/cond_cache.hpp"

namespace aeris::core {

/// Provides the exogenous forcing channels (top-of-atmosphere solar
/// radiation, surface geopotential, land-sea mask — paper §VI-B) for a
/// given autoregressive step. Returns [H, W, F] tokens.
using ForcingFn = std::function<Tensor(std::int64_t step)>;

/// Diffusion parameterization used by a forecaster.
enum class Parameterization { kTrigFlow, kEdm };

/// Autoregressive ensemble forecaster (paper Fig. 1c/1d): one forecast
/// step integrates T diffusion steps to sample the *residual*
/// x_i - x_{i-1} conditioned on x_{i-1} and forcings; the output becomes
/// the initial condition of the next step. New ensemble members resample
/// the initial noise (and churn noise) through the member key.
///
/// All fields are in *standardized* token layout [H, W, V]; the data
/// module owns (un)standardization.
class DiffusionForecaster {
 public:
  DiffusionForecaster(const AerisModel& model, const TrigFlowConfig& tf,
                      const TrigSamplerConfig& sampler, std::uint64_t seed);
  /// EDM-parameterized (GenCast-like baseline) forecaster.
  DiffusionForecaster(const AerisModel& model, const EdmConfig& edm,
                      const EdmSamplerConfig& sampler, std::uint64_t seed);
  /// Few-step consistency forecaster: `model` is a distilled student (same
  /// conditioning contract as the TrigFlow teacher) and each forecast step
  /// costs `sampler.steps` network evaluations instead of a full ODE
  /// integration.
  DiffusionForecaster(const AerisModel& model, const TrigFlowConfig& tf,
                      const ConsistencySamplerConfig& sampler,
                      std::uint64_t seed);

  /// One 6h/24h forecast step: returns the next state [H, W, V].
  /// Const end to end: the model is read-only and the counter-based RNG is
  /// stateless, so concurrent calls on one forecaster are safe.
  Tensor forecast_step(const Tensor& prev, const Tensor& forcings,
                       std::uint64_t member, std::int64_t step) const;

  /// Same, reusing the caller's conditioning cache across calls (rollouts
  /// pass one cache down their whole trajectory; `cache` may be nullptr).
  Tensor forecast_step(const Tensor& prev, const Tensor& forcings,
                       std::uint64_t member, std::int64_t step,
                       nn::CondCache* cache) const;

  /// Inference compute precision for the model forwards this forecaster
  /// issues. Defaults from AERIS_INFER_PRECISION (fp32 unless "bf16").
  void set_infer_precision(nn::InferPrecision p) { precision_ = p; }
  nn::InferPrecision infer_precision() const { return precision_; }

  /// Full rollout: returns n_steps states (not including the initial
  /// condition).
  std::vector<Tensor> rollout(const Tensor& init, const ForcingFn& forcings_at,
                              std::int64_t n_steps,
                              std::uint64_t member) const;

  /// Ensemble of rollouts; result[m][s] is member m at step s.
  std::vector<std::vector<Tensor>> ensemble_rollout(
      const Tensor& init, const ForcingFn& forcings_at, std::int64_t n_steps,
      std::int64_t members) const;

  Parameterization parameterization() const { return param_; }
  /// Sampler family this forecaster runs (kConsistency iff constructed
  /// with a ConsistencySamplerConfig).
  SamplerKind sampler_kind() const { return kind_; }

 private:
  const AerisModel& model_;
  Parameterization param_;
  SamplerKind kind_ = SamplerKind::kDpmSolver;
  TrigFlow trigflow_{TrigFlowConfig{}};
  TrigSamplerConfig trig_sampler_{};
  Edm edm_{EdmConfig{}};
  EdmSamplerConfig edm_sampler_{};
  ConsistencySamplerConfig cons_sampler_{};
  Philox rng_;
  nn::InferPrecision precision_ = nn::infer_precision_from_env();
};

/// Deterministic (GraphCast/FourCastNet-class) baseline: the same backbone
/// trained with MSE to predict the residual directly — exhibits the
/// blurring / under-dispersion the paper attributes to deterministic
/// methods (§IV-A). Input channels: prev + forcings (no noisy state).
class DeterministicForecaster {
 public:
  explicit DeterministicForecaster(const AerisModel& model) : model_(model) {}

  Tensor forecast_step(const Tensor& prev, const Tensor& forcings) const;
  std::vector<Tensor> rollout(const Tensor& init, const ForcingFn& forcings_at,
                              std::int64_t n_steps) const;

 private:
  const AerisModel& model_;
};

}  // namespace aeris::core
