#include "aeris/core/trainer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "aeris/tensor/numerics.hpp"
#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

TrainerConfig with_default_weights(TrainerConfig cfg, const ModelConfig& mc) {
  if (cfg.weights.lat.empty()) cfg.weights.lat = latitude_weights(mc.h);
  if (cfg.weights.var.empty()) {
    cfg.weights.var = uniform_weights(mc.out_channels);
  }
  return cfg;
}

}  // namespace

Trainer::Trainer(AerisModel& model, const TrainerConfig& cfg)
    : model_(model),
      cfg_(with_default_weights(cfg, model.config())),
      opt_(model.params(), cfg.adam),
      ema_(model.params(), cfg.ema_half_life),
      rng_(cfg.seed) {}

float Trainer::objective_forward_backward(std::span<const TrainExample> batch,
                                          bool compute_grads) {
  const ModelConfig& mc = model_.config();
  const std::int64_t b = static_cast<std::int64_t>(batch.size());
  if (b == 0) throw std::invalid_argument("train_step: empty batch");
  const std::int64_t v = mc.out_channels;
  const std::int64_t per_state = mc.h * mc.w * v;

  Tensor input({b, mc.h, mc.w, mc.in_channels});
  Tensor t_vec({b});
  // Per-sample scalar applied to both the residual and its gradient
  // (EDM's lambda * c_out; 1 otherwise).
  std::vector<float> grad_scale(static_cast<std::size_t>(b), 1.0f);
  // The regression target in network-output space.
  Tensor target({b, mc.h, mc.w, v});
  // For EDM we also need c_skip*x_t to assemble D(x); store the offset
  // (c_skip * x_t - x0) folded into `target` directly instead.

  const TrigFlow tf(cfg_.trigflow);
  const Edm edm(cfg_.edm);

  for (std::int64_t i = 0; i < b; ++i) {
    const TrainExample& ex = batch[i];
    if (ex.prev.ndim() != 3 || ex.prev.dim(2) != v) {
      throw std::invalid_argument("train_step: prev must be [H,W,V]");
    }
    // Residual target x0 = x_i - x_{i-1} (paper §VI-B).
    Tensor x0 = ex.target;
    sub_(x0, ex.prev);

    const std::uint64_t sample_index =
        static_cast<std::uint64_t>(images_seen_ + i);

    Tensor state_channels;  // first channel group of the network input
    if (cfg_.objective == Objective::kTrigFlow) {
      const float t = tf.sample_time(rng_, sample_index);
      Tensor z(x0.shape());
      rng_.fill_normal(z, rng_stream::kDiffusionNoise, sample_index);
      scale_(z, cfg_.trigflow.sigma_d);
      Tensor x_t = tf.interpolate(x0, z, t);
      // Network sees x_t / sigma_d; regresses v_t / sigma_d (so that
      // sigma_d * F = v_t at optimum, Eq. 1).
      state_channels = scale(x_t, 1.0f / cfg_.trigflow.sigma_d);
      Tensor v_t = tf.velocity_target(x0, z, t);
      scale_(v_t, 1.0f / cfg_.trigflow.sigma_d);
      std::copy_n(v_t.data(), per_state, target.data() + i * per_state);
      t_vec[i] = t;
      grad_scale[static_cast<std::size_t>(i)] = cfg_.trigflow.sigma_d;
    } else if (cfg_.objective == Objective::kEdm) {
      const float sigma = edm.sample_sigma(rng_, sample_index);
      Tensor n(x0.shape());
      rng_.fill_normal(n, rng_stream::kDiffusionNoise, sample_index);
      Tensor x_sigma = x0;
      axpy_(x_sigma, sigma, n);
      state_channels = scale(x_sigma, edm.c_in(sigma));
      // D = c_skip x_sigma + c_out F must match x0, so F must match
      // (x0 - c_skip x_sigma) / c_out; the lambda c_out^2 weight makes the
      // effective loss the standard EDM weighting.
      Tensor f_target = x0;
      axpy_(f_target, -edm.c_skip(sigma), x_sigma);
      scale_(f_target, 1.0f / edm.c_out(sigma));
      std::copy_n(f_target.data(), per_state, target.data() + i * per_state);
      t_vec[i] = edm.c_noise(sigma);
      grad_scale[static_cast<std::size_t>(i)] = std::sqrt(
          edm.loss_weight(sigma) * edm.c_out(sigma) * edm.c_out(sigma));
    } else {
      // Deterministic: predict the residual directly; no noise channels.
      state_channels = Tensor();  // no state group
      std::copy_n(x0.data(), per_state, target.data() + i * per_state);
      t_vec[i] = 0.0f;
    }

    // Assemble input channels: [state?, prev, forcings].
    Tensor cat;
    if (state_channels.empty()) {
      cat = concat(ex.prev, ex.forcings, 2);
    } else {
      const Tensor* parts[] = {&state_channels, &ex.prev, &ex.forcings};
      cat = concat(std::span<const Tensor* const>(parts, 3), 2);
    }
    if (cat.dim(2) != mc.in_channels) {
      throw std::invalid_argument(
          "train_step: model in_channels does not match objective inputs");
    }
    std::copy_n(cat.data(), cat.numel(), input.data() + i * cat.numel());
  }

  // Training-mode ctx in both branches: eval shares the exact numerics of
  // the train path (materialized-probs attention), differing only in
  // whether backward consumes the deposited activations.
  nn::FwdCtx ctx;
  Tensor f = model_.forward(input, t_vec, ctx);

  // Apply the per-sample scale to pred & target so weighted_mse computes
  // sum w * (scale*(F - target))^2 — equal to the parameterization's loss.
  Tensor pred_scaled = f;
  Tensor target_scaled = target;
  for (std::int64_t i = 0; i < b; ++i) {
    const float s = grad_scale[static_cast<std::size_t>(i)];
    if (s != 1.0f) {
      float* pp = pred_scaled.data() + i * per_state;
      float* pt = target_scaled.data() + i * per_state;
      for (std::int64_t j = 0; j < per_state; ++j) {
        pp[j] *= s;
        pt[j] *= s;
      }
    }
  }

  Tensor grad;
  const float loss = weighted_mse(pred_scaled, target_scaled, cfg_.weights,
                                  compute_grads ? &grad : nullptr);
  if (compute_grads) {
    for (std::int64_t i = 0; i < b; ++i) {
      const float s = grad_scale[static_cast<std::size_t>(i)];
      if (s != 1.0f) {
        float* pg = grad.data() + i * per_state;
        for (std::int64_t j = 0; j < per_state; ++j) pg[j] *= s;
      }
    }
    model_.backward(grad, ctx);
  }
  return loss;
}

float Trainer::train_step(std::span<const TrainExample> batch) {
  nn::zero_grads(model_.params());
  const float loss = objective_forward_backward(batch, /*compute_grads=*/true);
  // Numerical guard: a NaN/Inf loss or gradient must never reach AdamW —
  // the moments would absorb the non-finite values and every later step
  // would silently emit garbage. Throwing here leaves parameters,
  // optimizer state, EMA and images_seen exactly as before the step, so
  // the caller can skip the batch or restore a checkpoint.
  if (!std::isfinite(loss)) {
    throw NumericalError("train_step: non-finite loss at images_seen=" +
                         std::to_string(images_seen_));
  }
  for (const nn::Param* p : model_.params()) {
    if (!tensor::all_finite(p->grad)) {
      throw NumericalError(
          "train_step: non-finite gradient in '" + p->name + "' (flat index " +
          std::to_string(tensor::first_nonfinite(p->grad)) +
          ") at images_seen=" + std::to_string(images_seen_));
    }
  }
  if (cfg_.grad_clip > 0.0f) {
    nn::clip_grad_norm(model_.params(), cfg_.grad_clip);
  }
  const float lr = cfg_.schedule.at(images_seen_);
  opt_.step(lr);
  images_seen_ += static_cast<std::int64_t>(batch.size());
  ema_.update(model_.params(), static_cast<std::int64_t>(batch.size()));
  return loss;
}

float Trainer::eval_loss(std::span<const TrainExample> batch) {
  return objective_forward_backward(batch, /*compute_grads=*/false);
}

}  // namespace aeris::core
