#include "aeris/core/loss_weights.hpp"

#include <cmath>
#include <stdexcept>

namespace aeris::core {

Tensor latitude_weights(std::int64_t h) {
  Tensor w({h});
  double total = 0.0;
  for (std::int64_t r = 0; r < h; ++r) {
    const double lat_deg = -90.0 + (static_cast<double>(r) + 0.5) * 180.0 /
                                       static_cast<double>(h);
    const double c = std::cos(lat_deg * M_PI / 180.0);
    w[r] = static_cast<float>(c);
    total += c;
  }
  const float norm = static_cast<float>(static_cast<double>(h) / total);
  for (std::int64_t r = 0; r < h; ++r) w[r] *= norm;
  return w;
}

Tensor pressure_level_weights(std::span<const double> levels_hpa) {
  const std::int64_t n = static_cast<std::int64_t>(levels_hpa.size());
  if (n == 0) throw std::invalid_argument("pressure_level_weights: empty");
  Tensor w({n});
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    total += levels_hpa[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(levels_hpa[static_cast<std::size_t>(i)] *
                              static_cast<double>(n) / total);
  }
  return w;
}

Tensor uniform_weights(std::int64_t n) { return Tensor({n}, 1.0f); }

float weighted_mse(const Tensor& pred, const Tensor& target,
                   const LossWeights& w, Tensor* grad) {
  if (pred.shape() != target.shape() || pred.ndim() != 4) {
    throw std::invalid_argument("weighted_mse: expected matching [B,H,W,V]");
  }
  const std::int64_t b = pred.dim(0), h = pred.dim(1), ww = pred.dim(2),
                     v = pred.dim(3);
  if (w.lat.numel() != h || w.var.numel() != v) {
    throw std::invalid_argument("weighted_mse: weight dims mismatch");
  }
  if (grad != nullptr) *grad = Tensor(pred.shape());
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  double loss = 0.0;
  for (std::int64_t bb = 0; bb < b; ++bb) {
    for (std::int64_t r = 0; r < h; ++r) {
      const float wl = w.lat[r];
      for (std::int64_t c = 0; c < ww; ++c) {
        const std::int64_t off = ((bb * h + r) * ww + c) * v;
        for (std::int64_t vv = 0; vv < v; ++vv) {
          const float wt = wl * w.var[vv];
          const float d = pred[off + vv] - target[off + vv];
          loss += static_cast<double>(wt) * d * d;
          if (grad != nullptr) (*grad)[off + vv] = 2.0f * wt * d * inv_n;
        }
      }
    }
  }
  return static_cast<float>(loss * inv_n);
}

float lat_weighted_mse(const Tensor& pred, const Tensor& target,
                       const Tensor& lat_weights) {
  LossWeights w;
  w.lat = lat_weights;
  w.var = uniform_weights(pred.dim(-1));
  return weighted_mse(pred, target, w, nullptr);
}

}  // namespace aeris::core
