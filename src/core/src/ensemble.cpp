#include "aeris/core/ensemble.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "aeris/tensor/ops.hpp"
#include "aeris/tensor/thread_pool.hpp"

namespace aeris::core {
namespace {

/// Assembles the stacked model input [E, H, W, Cin] whose slab e is
/// concat(state_e, prev_e, forcings_e) along channels — the batched image
/// of the serial build_input in forecaster.cpp, with per-member
/// conditioning so slots from unrelated requests can share the stack.
Tensor build_packed_input(const Tensor& states, float state_scale,
                          std::span<const MemberSlot> pack) {
  const std::int64_t e = states.dim(0);
  const std::int64_t h = states.dim(1), w = states.dim(2);
  const std::int64_t v = states.dim(3);
  const std::int64_t f = pack.front().forcings->dim(2);
  const std::int64_t cin = 2 * v + f;
  Tensor input({e, h, w, cin});
  const std::int64_t pixels = h * w;
  for (std::int64_t m = 0; m < e; ++m) {
    const float* ps = states.data() + m * pixels * v;
    const float* pp = pack[static_cast<std::size_t>(m)].prev->data();
    const float* pf = pack[static_cast<std::size_t>(m)].forcings->data();
    float* pi = input.data() + m * pixels * cin;
    for (std::int64_t px = 0; px < pixels; ++px) {
      float* dst = pi + px * cin;
      const float* s = ps + px * v;
      for (std::int64_t c = 0; c < v; ++c) dst[c] = s[c] * state_scale;
      const float* p = pp + px * v;
      for (std::int64_t c = 0; c < v; ++c) dst[v + c] = p[c];
      const float* fo = pf + px * f;
      for (std::int64_t c = 0; c < f; ++c) dst[2 * v + c] = fo[c];
    }
  }
  return input;
}

Tensor member_slab(const Tensor& stacked, std::int64_t m, const Shape& shape) {
  Tensor out(shape);
  std::copy_n(stacked.data() + m * out.numel(), out.numel(), out.data());
  return out;
}

}  // namespace

ParallelEnsembleEngine::ParallelEnsembleEngine(const AerisModel& model,
                                              const TrigFlowConfig& tf,
                                              const TrigSamplerConfig& sampler,
                                              std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kTrigFlow),
      trigflow_(tf),
      trig_sampler_(sampler),
      rng_(seed) {}

ParallelEnsembleEngine::ParallelEnsembleEngine(const AerisModel& model,
                                              const EdmConfig& edm,
                                              const EdmSamplerConfig& sampler,
                                              std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kEdm),
      edm_(edm),
      edm_sampler_(sampler),
      rng_(seed) {}

ParallelEnsembleEngine::ParallelEnsembleEngine(
    const AerisModel& model, const TrigFlowConfig& tf,
    const ConsistencySamplerConfig& sampler, std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kTrigFlow),
      default_kind_(SamplerKind::kConsistency),
      trigflow_(tf),
      cons_sampler_(sampler),
      has_consistency_(true),
      rng_(seed) {}

std::vector<Tensor> ParallelEnsembleEngine::step_pack(
    std::span<const MemberSlot> pack, int solver_steps_override,
    nn::CondCache* cache, std::optional<SamplerKind> kind) const {
  if (pack.empty()) return {};
  const SamplerKind resolved = kind.value_or(default_kind_);
  if (resolved == SamplerKind::kConsistency && !has_consistency()) {
    throw std::invalid_argument(
        "step_pack: consistency pack on an engine without a consistency "
        "sampler (construct with ConsistencySamplerConfig or attach a "
        "student via set_consistency)");
  }
  // No caller-owned cache: use a call-local one so at least the stages
  // this solve revisits (EDM's Heun evaluates each interior sigma twice)
  // hit. Call-local state keeps the const/concurrent contract trivially.
  nn::CondCache local_cache;
  if (cache == nullptr && nn::cond_cache_enabled()) cache = &local_cache;
  const Shape& shape = pack.front().prev->shape();  // [H, W, V]
  for (const MemberSlot& slot : pack) {
    if (slot.prev == nullptr || slot.forcings == nullptr) {
      throw std::invalid_argument("step_pack: null slot tensor");
    }
    if (slot.prev->ndim() != 3 || slot.forcings->ndim() != 3) {
      throw std::invalid_argument("step_pack: slots must be [H,W,*]");
    }
    if (slot.prev->shape() != shape ||
        slot.forcings->dim(0) != shape[0] ||
        slot.forcings->dim(1) != shape[1] ||
        slot.forcings->dim(2) != pack.front().forcings->dim(2)) {
      throw std::invalid_argument("step_pack: slot shape mismatch");
    }
  }
  const std::int64_t e = static_cast<std::int64_t>(pack.size());

  std::vector<MemberKey> keys(pack.size());
  for (std::size_t m = 0; m < pack.size(); ++m) keys[m] = pack[m].noise;

  Tensor residual;
  if (resolved == SamplerKind::kConsistency) {
    // Few-step student path: same conditioning contract as the teacher,
    // different network (the attached student, or the engine's own model
    // when it was constructed as a consistency engine) and a sampler that
    // jumps to x_0 in cons_sampler_.steps evaluations.
    ConsistencySamplerConfig sc = cons_sampler_;
    if (solver_steps_override > 0) sc.steps = solver_steps_override;
    const AerisModel& net = student_ != nullptr ? *student_ : model_;
    const float sd = trigflow_.config().sigma_d;
    DenoiserFn velocity = [&](const Tensor& x, float t) {
      Tensor input = build_packed_input(x, 1.0f / sd, pack);
      Tensor f = net.forward(input, Tensor({e}, t), cache, precision_);
      scale_(f, sd);  // velocity = sigma_d * F
      return f;
    };
    residual = sample_consistency_batched(velocity, shape, trigflow_, sc,
                                          std::span<const MemberKey>(keys));
  } else if (param_ == Parameterization::kTrigFlow) {
    TrigSamplerConfig sc = trig_sampler_;
    if (solver_steps_override > 0) sc.steps = solver_steps_override;
    const float sd = trigflow_.config().sigma_d;
    DenoiserFn velocity = [&](const Tensor& x, float t) {
      // x: [E, H, W, V] — slab m is member m's x_t.
      Tensor input = build_packed_input(x, 1.0f / sd, pack);
      Tensor f = model_.forward(input, Tensor({e}, t), cache, precision_);
      scale_(f, sd);  // velocity = sigma_d * F
      return f;
    };
    residual = sample_trigflow_batched(velocity, shape, trigflow_, sc,
                                       std::span<const MemberKey>(keys));
  } else {
    EdmSamplerConfig sc = edm_sampler_;
    if (solver_steps_override > 0) sc.steps = solver_steps_override;
    DenoiserFn network = [&](const Tensor& xin, float t) {
      Tensor input = build_packed_input(xin, 1.0f, pack);
      return model_.forward(input, Tensor({e}, t), cache, precision_);
    };
    residual = sample_edm_batched(network, shape, edm_, sc,
                                  std::span<const MemberKey>(keys));
  }

  std::vector<Tensor> next;
  next.reserve(pack.size());
  for (std::int64_t m = 0; m < e; ++m) {
    next.push_back(add(*pack[static_cast<std::size_t>(m)].prev,
                       member_slab(residual, m, shape)));
  }
  return next;
}

std::vector<Tensor> ParallelEnsembleEngine::step_chunk(
    const std::vector<Tensor>& states, const Tensor& forcings, std::int64_t m0,
    std::int64_t step, nn::CondCache* cache) const {
  // The per-member key matches DiffusionForecaster::forecast_step, so the
  // stacked solve consumes exactly the serial noise streams.
  std::vector<MemberSlot> slots(states.size());
  for (std::size_t m = 0; m < states.size(); ++m) {
    slots[m].prev = &states[m];
    slots[m].forcings = &forcings;
    slots[m].noise = MemberKey{
        rng_.seed(), (static_cast<std::uint64_t>(m0) + m) * 4096 +
                         static_cast<std::uint64_t>(step)};
  }
  return step_pack(slots, 0, cache);
}

std::vector<std::vector<Tensor>> ParallelEnsembleEngine::ensemble_rollout(
    const Tensor& init, const ForcingFn& forcings_at, std::int64_t n_steps,
    std::int64_t members, const EnsembleOptions& opts) const {
  if (init.ndim() != 3) {
    throw std::invalid_argument("ensemble_rollout: init must be [H,W,V]");
  }
  if (members <= 0) return {};
  const std::int64_t batch = std::max<std::int64_t>(1, opts.batch);

  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;  // [m0, m1)
  for (std::int64_t m = 0; m < members; m += batch) {
    chunks.emplace_back(m, std::min(m + batch, members));
  }

  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(members));

  auto run_chunk = [&](std::int64_t m0, std::int64_t m1) {
    const std::int64_t e = m1 - m0;
    // Chunk-local conditioning cache: every forecast step of every member
    // replays the same solver schedule, so after the first solve all
    // conditioning forwards are hits. Chunks never share a cache, keeping
    // multi-driver workers lock-free.
    nn::CondCache cache;
    nn::CondCache* cp = nn::cond_cache_enabled() ? &cache : nullptr;
    std::vector<Tensor> states(static_cast<std::size_t>(e), init);
    for (std::int64_t s = 0; s < n_steps; ++s) {
      states = step_chunk(states, forcings_at(s), m0, s, cp);
      for (std::int64_t m = 0; m < e; ++m) {
        out[static_cast<std::size_t>(m0 + m)].push_back(
            states[static_cast<std::size_t>(m)]);
      }
    }
  };

  const int threads =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(std::max(1, opts.threads)), chunks.size()));
  if (threads <= 1) {
    // Single driver: kernels keep using the shared pool internally.
    for (const auto& [m0, m1] : chunks) run_chunk(m0, m1);
    return out;
  }

  // Multi-driver mode: each worker claims whole chunks and runs its
  // kernels inline (SerialRegionGuard) — the shared ThreadPool holds a
  // single job descriptor, so concurrent parallel_for dispatch from two
  // drivers is not allowed, and inline execution is bitwise-identical
  // anyway because every kernel splits only independent output rows.
  std::atomic<std::size_t> next_chunk{0};
  std::exception_ptr first_error;
  std::mutex err_mutex;
  auto worker = [&] {
    SerialRegionGuard serial;
    for (;;) {
      const std::size_t i =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks.size()) return;
      try {
        run_chunk(chunks[i].first, chunks[i].second);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace aeris::core
