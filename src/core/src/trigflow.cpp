#include "aeris/core/trigflow.hpp"

#include <cmath>

#include "aeris/tensor/ops.hpp"

namespace aeris::core {

float TrigFlow::time_from_uniform(float u) const {
  const float log_tau = (1.0f - u) * std::log(cfg_.sigma_min) +
                        u * std::log(cfg_.sigma_max);
  return std::atan(std::exp(log_tau) / cfg_.sigma_d);
}

float TrigFlow::sample_time(const Philox& rng,
                            std::uint64_t sample_index) const {
  const float u = rng.uniform(rng_stream::kDiffusionTime, sample_index, 0);
  return time_from_uniform(u);
}

Tensor TrigFlow::interpolate(const Tensor& x0, const Tensor& z, float t) const {
  Tensor out = scale(x0, std::cos(t));
  axpy_(out, std::sin(t), z);
  return out;
}

Tensor TrigFlow::velocity_target(const Tensor& x0, const Tensor& z,
                                 float t) const {
  Tensor out = scale(z, std::cos(t));
  axpy_(out, -std::sin(t), x0);
  return out;
}

Tensor TrigFlow::residual(const Tensor& f, const Tensor& v_t) const {
  Tensor out = scale(f, cfg_.sigma_d);
  sub_(out, v_t);
  return out;
}

float TrigFlow::t_min() const { return std::atan(cfg_.sigma_min / cfg_.sigma_d); }
float TrigFlow::t_max() const { return std::atan(cfg_.sigma_max / cfg_.sigma_d); }

}  // namespace aeris::core
