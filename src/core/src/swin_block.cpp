#include "aeris/core/swin_block.hpp"

#include <stdexcept>

#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

// Ctx slot: everything the block-level backward consumes. Sublayer
// activations (attention q/k/v, FFN pre-activations, ...) live in the same
// ctx under the sublayers' own ids.
struct SwinBlockCache {
  std::int64_t wps = 1;
  Tensor x, h;                  // block inputs of each sublayer
  Tensor norm1_out, norm2_out;  // normalized activations
  Tensor attn_out, ffn_out;     // sublayer outputs (pre-gate)
  nn::AdaLNHead::Mod mod_a, mod_f;
};

}  // namespace

SwinBlock::SwinBlock(std::string name, const Config& cfg)
    : cfg_(cfg),
      adaln_attn_(name + ".attn", cfg.cond_dim, cfg.dim),
      adaln_ffn_(name + ".ffn", cfg.cond_dim, cfg.dim),
      norm1_(name + ".norm1", cfg.dim, /*elementwise_affine=*/false),
      norm2_(name + ".norm2", cfg.dim, /*elementwise_affine=*/false),
      attn_(name + ".attn", cfg.dim, cfg.heads, cfg.win_h, cfg.win_w),
      ffn_(name + ".ffn", cfg.dim, cfg.ffn_hidden) {}

void SwinBlock::init(const Philox& rng, std::uint64_t index) {
  attn_.init(rng, index * 8 + 0);
  ffn_.init(rng, index * 8 + 1);
  // AdaLN heads stay zero-initialized (identity blocks at start).
}

Tensor SwinBlock::forward(const Tensor& x, const Tensor& cond,
                          std::int64_t windows_per_sample,
                          nn::FwdCtx& ctx) const {
  const std::int64_t wps = windows_per_sample;
  nn::AdaLNHead::Mod mod_a = adaln_attn_.forward(cond, ctx);
  nn::AdaLNHead::Mod mod_f = adaln_ffn_.forward(cond, ctx);

  Tensor norm1_out = norm1_.forward(x, ctx);
  Tensor h_mod = nn::modulate(norm1_out, mod_a, wps);
  Tensor attn_out = attn_.forward(h_mod, ctx);
  Tensor h = nn::apply_gate(x, attn_out, mod_a.gate, wps);

  Tensor norm2_out = norm2_.forward(h, ctx);
  Tensor f_mod = nn::modulate(norm2_out, mod_f, wps);
  Tensor ffn_out = ffn_.forward(f_mod, ctx);
  Tensor y = nn::apply_gate(h, ffn_out, mod_f.gate, wps);

  if (ctx.training()) {
    SwinBlockCache& cache = ctx.slot<SwinBlockCache>(id_);
    cache.wps = wps;
    cache.x = x;
    cache.h = std::move(h);
    cache.norm1_out = std::move(norm1_out);
    cache.norm2_out = std::move(norm2_out);
    cache.attn_out = std::move(attn_out);
    cache.ffn_out = std::move(ffn_out);
    cache.mod_a = std::move(mod_a);
    cache.mod_f = std::move(mod_f);
  }
  return y;
}

Tensor SwinBlock::backward(const Tensor& dy, Tensor& dcond, nn::FwdCtx& ctx) {
  SwinBlockCache* c = ctx.find<SwinBlockCache>(id_);
  if (c == nullptr || c->ffn_out.empty()) {
    throw std::logic_error("SwinBlock: backward before forward");
  }
  // ---- FFN sublayer ----
  Tensor dffn_out, dgate_f;
  nn::apply_gate_backward(c->ffn_out, c->mod_f.gate, dy, dffn_out, dgate_f,
                          c->wps);
  Tensor dh = dy;  // residual path

  Tensor df_mod = ffn_.backward(dffn_out, ctx);
  nn::AdaLNHead::Mod dmod_f;
  Tensor dnorm2 =
      nn::modulate_backward(c->norm2_out, c->mod_f, df_mod, dmod_f, c->wps);
  dmod_f.gate = dgate_f;
  add_(dcond, adaln_ffn_.backward(dmod_f, ctx));
  add_(dh, norm2_.backward(dnorm2, ctx));

  // ---- attention sublayer ----
  Tensor dattn_out, dgate_a;
  nn::apply_gate_backward(c->attn_out, c->mod_a.gate, dh, dattn_out, dgate_a,
                          c->wps);
  Tensor dx = dh;  // residual path

  Tensor dh_mod = attn_.backward(dattn_out, ctx);
  nn::AdaLNHead::Mod dmod_a;
  Tensor dnorm1 =
      nn::modulate_backward(c->norm1_out, c->mod_a, dh_mod, dmod_a, c->wps);
  dmod_a.gate = dgate_a;
  add_(dcond, adaln_attn_.backward(dmod_a, ctx));
  add_(dx, norm1_.backward(dnorm1, ctx));
  return dx;
}

void SwinBlock::collect_params(nn::ParamList& out) {
  adaln_attn_.collect_params(out);
  adaln_ffn_.collect_params(out);
  norm1_.collect_params(out);
  norm2_.collect_params(out);
  attn_.collect_params(out);
  ffn_.collect_params(out);
}

void SwinBlock::collect_params(nn::ConstParamList& out) const {
  adaln_attn_.collect_params(out);
  adaln_ffn_.collect_params(out);
  norm1_.collect_params(out);
  norm2_.collect_params(out);
  attn_.collect_params(out);
  ffn_.collect_params(out);
}

}  // namespace aeris::core
