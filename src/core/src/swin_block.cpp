#include "aeris/core/swin_block.hpp"

#include "aeris/tensor/ops.hpp"

namespace aeris::core {

SwinBlock::SwinBlock(std::string name, const Config& cfg)
    : cfg_(cfg),
      adaln_attn_(name + ".attn", cfg.cond_dim, cfg.dim),
      adaln_ffn_(name + ".ffn", cfg.cond_dim, cfg.dim),
      norm1_(name + ".norm1", cfg.dim, /*elementwise_affine=*/false),
      norm2_(name + ".norm2", cfg.dim, /*elementwise_affine=*/false),
      attn_(name + ".attn", cfg.dim, cfg.heads, cfg.win_h, cfg.win_w),
      ffn_(name + ".ffn", cfg.dim, cfg.ffn_hidden) {}

void SwinBlock::init(const Philox& rng, std::uint64_t index) {
  attn_.init(rng, index * 8 + 0);
  ffn_.init(rng, index * 8 + 1);
  // AdaLN heads stay zero-initialized (identity blocks at start).
}

Tensor SwinBlock::forward(const Tensor& x, const Tensor& cond,
                          std::int64_t windows_per_sample) {
  wps_ = windows_per_sample;
  x_ = x;
  mod_a_ = adaln_attn_.forward(cond);
  mod_f_ = adaln_ffn_.forward(cond);

  norm1_out_ = norm1_.forward(x);
  Tensor h_mod = nn::modulate(norm1_out_, mod_a_, wps_);
  attn_out_ = attn_.forward(h_mod);
  h_ = nn::apply_gate(x, attn_out_, mod_a_.gate, wps_);

  norm2_out_ = norm2_.forward(h_);
  Tensor f_mod = nn::modulate(norm2_out_, mod_f_, wps_);
  ffn_out_ = ffn_.forward(f_mod);
  return nn::apply_gate(h_, ffn_out_, mod_f_.gate, wps_);
}

Tensor SwinBlock::backward(const Tensor& dy, Tensor& dcond) {
  // ---- FFN sublayer ----
  Tensor dffn_out, dgate_f;
  nn::apply_gate_backward(ffn_out_, mod_f_.gate, dy, dffn_out, dgate_f, wps_);
  Tensor dh = dy;  // residual path

  Tensor df_mod = ffn_.backward(dffn_out);
  nn::AdaLNHead::Mod dmod_f;
  Tensor dnorm2 = nn::modulate_backward(norm2_out_, mod_f_, df_mod, dmod_f, wps_);
  dmod_f.gate = dgate_f;
  add_(dcond, adaln_ffn_.backward(dmod_f));
  add_(dh, norm2_.backward(dnorm2));

  // ---- attention sublayer ----
  Tensor dattn_out, dgate_a;
  nn::apply_gate_backward(attn_out_, mod_a_.gate, dh, dattn_out, dgate_a, wps_);
  Tensor dx = dh;  // residual path

  Tensor dh_mod = attn_.backward(dattn_out);
  nn::AdaLNHead::Mod dmod_a;
  Tensor dnorm1 = nn::modulate_backward(norm1_out_, mod_a_, dh_mod, dmod_a, wps_);
  dmod_a.gate = dgate_a;
  add_(dcond, adaln_attn_.backward(dmod_a));
  add_(dx, norm1_.backward(dnorm1));
  return dx;
}

void SwinBlock::collect_params(nn::ParamList& out) {
  adaln_attn_.collect_params(out);
  adaln_ffn_.collect_params(out);
  norm1_.collect_params(out);
  norm2_.collect_params(out);
  attn_.collect_params(out);
  ffn_.collect_params(out);
}

}  // namespace aeris::core
