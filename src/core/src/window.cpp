#include "aeris/core/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace aeris::core {

Tensor roll2d(const Tensor& x, std::int64_t dy, std::int64_t dx) {
  if (x.ndim() != 3) throw std::invalid_argument("roll2d: expected [H,W,C]");
  const std::int64_t h = x.dim(0), w = x.dim(1), c = x.dim(2);
  const std::int64_t sy = ((dy % h) + h) % h;
  const std::int64_t sx = ((dx % w) + w) % w;
  if (sy == 0 && sx == 0) return x;
  Tensor out(x.shape());
  for (std::int64_t r = 0; r < h; ++r) {
    const std::int64_t src_r = (r - sy + h) % h;
    for (std::int64_t cc = 0; cc < w; ++cc) {
      const std::int64_t src_c = (cc - sx + w) % w;
      std::copy_n(x.data() + (src_r * w + src_c) * c, c,
                  out.data() + (r * w + cc) * c);
    }
  }
  return out;
}

std::int64_t window_count(std::int64_t h, std::int64_t w, std::int64_t win_h,
                          std::int64_t win_w) {
  if (win_h <= 0 || win_w <= 0 || h % win_h != 0 || w % win_w != 0) {
    throw std::invalid_argument("window grid must divide the token grid");
  }
  return (h / win_h) * (w / win_w);
}

Tensor window_partition(const Tensor& x, std::int64_t win_h,
                        std::int64_t win_w, std::int64_t shift) {
  if (x.ndim() != 3) throw std::invalid_argument("window_partition: [H,W,C]");
  const std::int64_t h = x.dim(0), w = x.dim(1), c = x.dim(2);
  const std::int64_t nwin = window_count(h, w, win_h, win_w);
  const Tensor rolled = shift != 0 ? roll2d(x, -shift, -shift) : x;
  Tensor out({nwin, win_h * win_w, c});
  const std::int64_t wy = h / win_h;
  (void)wy;
  const std::int64_t wx = w / win_w;
  for (std::int64_t win = 0; win < nwin; ++win) {
    const std::int64_t wr = win / wx;
    const std::int64_t wc = win % wx;
    for (std::int64_t r = 0; r < win_h; ++r) {
      const std::int64_t gr = wr * win_h + r;
      std::copy_n(rolled.data() + (gr * w + wc * win_w) * c, win_w * c,
                  out.data() + (win * win_h * win_w + r * win_w) * c);
    }
  }
  return out;
}

Tensor window_reverse(const Tensor& windows, std::int64_t h, std::int64_t w,
                      std::int64_t win_h, std::int64_t win_w,
                      std::int64_t shift) {
  const std::int64_t nwin = window_count(h, w, win_h, win_w);
  if (windows.ndim() != 3 || windows.dim(0) != nwin ||
      windows.dim(1) != win_h * win_w) {
    throw std::invalid_argument("window_reverse: bad windows shape " +
                                shape_to_string(windows.shape()));
  }
  const std::int64_t c = windows.dim(2);
  Tensor out({h, w, c});
  const std::int64_t wx = w / win_w;
  for (std::int64_t win = 0; win < nwin; ++win) {
    const std::int64_t wr = win / wx;
    const std::int64_t wc = win % wx;
    for (std::int64_t r = 0; r < win_h; ++r) {
      const std::int64_t gr = wr * win_h + r;
      std::copy_n(windows.data() + (win * win_h * win_w + r * win_w) * c,
                  win_w * c, out.data() + (gr * w + wc * win_w) * c);
    }
  }
  return shift != 0 ? roll2d(out, shift, shift) : out;
}

Tensor field_to_tokens(const Tensor& field) {
  if (field.ndim() != 3) throw std::invalid_argument("field_to_tokens: [V,H,W]");
  const std::int64_t v = field.dim(0), h = field.dim(1), w = field.dim(2);
  Tensor out({h, w, v});
  for (std::int64_t vv = 0; vv < v; ++vv) {
    const float* src = field.data() + vv * h * w;
    for (std::int64_t r = 0; r < h; ++r) {
      for (std::int64_t cc = 0; cc < w; ++cc) {
        out[(r * w + cc) * v + vv] = src[r * w + cc];
      }
    }
  }
  return out;
}

Tensor tokens_to_field(const Tensor& tokens) {
  if (tokens.ndim() != 3) throw std::invalid_argument("tokens_to_field: [H,W,V]");
  const std::int64_t h = tokens.dim(0), w = tokens.dim(1), v = tokens.dim(2);
  Tensor out({v, h, w});
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t cc = 0; cc < w; ++cc) {
      const float* src = tokens.data() + (r * w + cc) * v;
      for (std::int64_t vv = 0; vv < v; ++vv) {
        out[vv * h * w + r * w + cc] = src[vv];
      }
    }
  }
  return out;
}

}  // namespace aeris::core
