#include "aeris/core/edm.hpp"

#include <cmath>
#include <stdexcept>

namespace aeris::core {

float Edm::sample_sigma(const Philox& rng, std::uint64_t sample_index) const {
  const float n = rng.normal(rng_stream::kDiffusionTime, sample_index, 1);
  return std::exp(cfg_.p_mean + cfg_.p_std * n);
}

float Edm::c_in(float sigma) const {
  return 1.0f / std::sqrt(sigma * sigma + cfg_.sigma_d * cfg_.sigma_d);
}

float Edm::c_skip(float sigma) const {
  const float s2 = cfg_.sigma_d * cfg_.sigma_d;
  return s2 / (sigma * sigma + s2);
}

float Edm::c_out(float sigma) const {
  return sigma * cfg_.sigma_d /
         std::sqrt(sigma * sigma + cfg_.sigma_d * cfg_.sigma_d);
}

float Edm::c_noise(float sigma) const { return 0.25f * std::log(sigma); }

float Edm::loss_weight(float sigma) const {
  const float so = sigma * cfg_.sigma_d;
  return (sigma * sigma + cfg_.sigma_d * cfg_.sigma_d) / (so * so);
}

std::vector<float> Edm::schedule(int n) const {
  if (n < 1) throw std::invalid_argument("Edm::schedule: steps < 1");
  std::vector<float> out(static_cast<std::size_t>(n) + 1);
  const float inv_rho = 1.0f / cfg_.rho;
  const float a = std::pow(cfg_.sigma_max, inv_rho);
  const float b = std::pow(cfg_.sigma_min, inv_rho);
  for (int i = 0; i < n; ++i) {
    // n == 1 degenerates to the single stage {sigma_max, 0} (one Euler
    // step straight to the data manifold) instead of dividing by zero —
    // DegradePolicy may drive the override all the way down to 1.
    const float frac =
        n == 1 ? 0.0f
               : static_cast<float>(i) / static_cast<float>(n - 1);
    out[static_cast<std::size_t>(i)] = std::pow(a + frac * (b - a), cfg_.rho);
  }
  out[static_cast<std::size_t>(n)] = 0.0f;
  return out;
}

}  // namespace aeris::core
