#include "aeris/core/forecaster.hpp"

#include <stdexcept>

#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

/// Stacks [H,W,*] channel groups into a single [1,H,W,C] model input.
Tensor build_input(const Tensor& state, const Tensor& prev,
                   const Tensor& forcings) {
  const Tensor* parts[] = {&state, &prev, &forcings};
  Tensor cat = concat(std::span<const Tensor* const>(parts, 3), 2);
  return std::move(cat).reshaped({1, cat.dim(0), cat.dim(1), cat.dim(2)});
}

Tensor squeeze_batch(Tensor x) {
  return std::move(x).reshaped({x.dim(1), x.dim(2), x.dim(3)});
}

}  // namespace

DiffusionForecaster::DiffusionForecaster(const AerisModel& model,
                                         const TrigFlowConfig& tf,
                                         const TrigSamplerConfig& sampler,
                                         std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kTrigFlow),
      trigflow_(tf),
      trig_sampler_(sampler),
      rng_(seed) {}

DiffusionForecaster::DiffusionForecaster(const AerisModel& model,
                                         const EdmConfig& edm,
                                         const EdmSamplerConfig& sampler,
                                         std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kEdm),
      edm_(edm),
      edm_sampler_(sampler),
      rng_(seed) {}

DiffusionForecaster::DiffusionForecaster(const AerisModel& model,
                                         const TrigFlowConfig& tf,
                                         const ConsistencySamplerConfig& sampler,
                                         std::uint64_t seed)
    : model_(model),
      param_(Parameterization::kTrigFlow),
      kind_(SamplerKind::kConsistency),
      trigflow_(tf),
      cons_sampler_(sampler),
      rng_(seed) {}

Tensor DiffusionForecaster::forecast_step(const Tensor& prev,
                                          const Tensor& forcings,
                                          std::uint64_t member,
                                          std::int64_t step) const {
  // One-shot call: own a step-local cache (reused across the solver stages
  // of this step — EDM's Heun overlap and TrigFlow re-visits both hit).
  nn::CondCache cache;
  return forecast_step(prev, forcings, member, step,
                       nn::cond_cache_enabled() ? &cache : nullptr);
}

Tensor DiffusionForecaster::forecast_step(const Tensor& prev,
                                          const Tensor& forcings,
                                          std::uint64_t member,
                                          std::int64_t step,
                                          nn::CondCache* cache) const {
  if (prev.ndim() != 3) {
    throw std::invalid_argument("forecast_step: prev must be [H,W,V]");
  }
  const std::uint64_t member_key =
      member * 4096 + static_cast<std::uint64_t>(step);
  // Sampling never needs backward: the const model overload runs with an
  // inference-mode ctx, so attention streams (no [B,H,T,T] probs) and no
  // layer retains activations.
  Tensor residual;
  if (param_ == Parameterization::kTrigFlow) {
    const float sd = trigflow_.config().sigma_d;
    DenoiserFn velocity = [&](const Tensor& x, float t) {
      Tensor xin = scale(x, 1.0f / sd);  // F takes x_t / sigma_d
      Tensor input = build_input(xin, prev, forcings);
      Tensor f = model_.forward(input, Tensor({1}, t), cache, precision_);
      Tensor v = squeeze_batch(std::move(f));
      scale_(v, sd);  // velocity = sigma_d * F
      return v;
    };
    residual = kind_ == SamplerKind::kConsistency
                   ? sample_consistency(velocity, prev.shape(), trigflow_,
                                        cons_sampler_, rng_, member_key)
                   : sample_trigflow(velocity, prev.shape(), trigflow_,
                                     trig_sampler_, rng_, member_key);
  } else {
    DenoiserFn network = [&](const Tensor& xin, float t) {
      Tensor input = build_input(xin, prev, forcings);
      Tensor f = model_.forward(input, Tensor({1}, t), cache, precision_);
      return squeeze_batch(std::move(f));
    };
    residual = sample_edm(network, prev.shape(), edm_, edm_sampler_, rng_,
                          member_key);
  }
  return add(prev, residual);
}

std::vector<Tensor> DiffusionForecaster::rollout(const Tensor& init,
                                                 const ForcingFn& forcings_at,
                                                 std::int64_t n_steps,
                                                 std::uint64_t member) const {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(n_steps));
  // One cache spans the whole trajectory: every forecast step replays the
  // same solver schedule, so stages after the first step's are all hits.
  nn::CondCache cache;
  nn::CondCache* cp = nn::cond_cache_enabled() ? &cache : nullptr;
  Tensor state = init;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    state = forecast_step(state, forcings_at(s), member, s, cp);
    out.push_back(state);
  }
  return out;
}

std::vector<std::vector<Tensor>> DiffusionForecaster::ensemble_rollout(
    const Tensor& init, const ForcingFn& forcings_at, std::int64_t n_steps,
    std::int64_t members) const {
  std::vector<std::vector<Tensor>> out;
  out.reserve(static_cast<std::size_t>(members));
  for (std::int64_t m = 0; m < members; ++m) {
    out.push_back(rollout(init, forcings_at, n_steps,
                          static_cast<std::uint64_t>(m)));
  }
  return out;
}

Tensor DeterministicForecaster::forecast_step(const Tensor& prev,
                                              const Tensor& forcings) const {
  Tensor cat = concat(prev, forcings, 2);
  Tensor input =
      std::move(cat).reshaped({1, cat.dim(0), cat.dim(1), cat.dim(2)});
  Tensor f = model_.forward(input, Tensor({1}, 0.0f));
  Tensor residual = squeeze_batch(std::move(f));
  return add(prev, residual);
}

std::vector<Tensor> DeterministicForecaster::rollout(
    const Tensor& init, const ForcingFn& forcings_at,
    std::int64_t n_steps) const {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(n_steps));
  Tensor state = init;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    state = forecast_step(state, forcings_at(s));
    out.push_back(state);
  }
  return out;
}

}  // namespace aeris::core
