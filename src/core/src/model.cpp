#include "aeris/core/model.hpp"

#include <cstring>
#include <stdexcept>

#include "aeris/nn/cond_cache.hpp"
#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

// Ctx slot: the batch size of the matching forward (doubles as the
// forward-happened marker for backward).
struct ModelCache {
  std::int64_t batch = 0;
};

}  // namespace

namespace {

void check_grid(const ModelConfig& cfg) {
  if (cfg.h % cfg.win_h != 0 || cfg.w % cfg.win_w != 0) {
    throw std::invalid_argument("AerisModel: windows must tile the grid");
  }
  if (cfg.win_h % 2 != 0) {
    throw std::invalid_argument("AerisModel: window size must be even (shift)");
  }
}

}  // namespace

AerisModel::AerisModel(const ModelConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      posenc_(nn::sinusoidal_posenc_2d(cfg.h, cfg.w)),
      embed_(std::make_shared<nn::Linear>("embed", cfg.in_channels, cfg.dim)),
      time_embed_(std::make_shared<nn::TimeEmbedding>("time",
                                                      cfg.time_features,
                                                      cfg.cond_dim)),
      final_norm_(std::make_shared<nn::RMSNorm>("final_norm", cfg.dim)),
      head_(std::make_shared<nn::Linear>("head", cfg.dim, cfg.out_channels)) {
  check_grid(cfg);
  SwinBlock::Config bc;
  bc.dim = cfg.dim;
  bc.heads = cfg.heads;
  bc.ffn_hidden = cfg.ffn_hidden;
  bc.win_h = cfg.win_h;
  bc.win_w = cfg.win_w;
  bc.cond_dim = cfg.cond_dim;
  blocks_.reserve(static_cast<std::size_t>(cfg.depth));
  for (std::int64_t l = 0; l < cfg.depth; ++l) {
    blocks_.push_back(
        std::make_shared<SwinBlock>("block" + std::to_string(l), bc));
  }

  const Philox rng(seed);
  embed_->init(rng, 1);
  time_embed_->init(rng, 2);
  for (std::int64_t l = 0; l < cfg.depth; ++l) {
    blocks_[static_cast<std::size_t>(l)]->init(rng, 16 + static_cast<std::uint64_t>(l));
  }
  head_->init_zero();  // start as an identity residual model

  embed_->collect_params(params_);
  time_embed_->collect_params(params_);
  for (auto& b : blocks_) b->collect_params(params_);
  final_norm_->collect_params(params_);
  head_->collect_params(params_);
  const_params_.assign(params_.begin(), params_.end());
}

AerisModel::AerisModel(const ModelConfig& cfg, const AerisModel& backbone)
    : cfg_(cfg),
      posenc_(nn::sinusoidal_posenc_2d(cfg.h, cfg.w)),
      embed_(backbone.embed_),
      time_embed_(backbone.time_embed_),
      blocks_(backbone.blocks_),
      final_norm_(backbone.final_norm_),
      head_(std::make_shared<nn::Linear>("head", cfg.dim, cfg.out_channels)),
      shares_backbone_(true) {
  check_grid(cfg);
  const ModelConfig& dc = backbone.cfg_;
  if (cfg.in_channels != dc.in_channels || cfg.dim != dc.dim ||
      cfg.depth != dc.depth || cfg.heads != dc.heads ||
      cfg.ffn_hidden != dc.ffn_hidden || cfg.win_h != dc.win_h ||
      cfg.win_w != dc.win_w || cfg.cond_dim != dc.cond_dim ||
      cfg.time_features != dc.time_features) {
    throw std::invalid_argument(
        "AerisModel: a shared-backbone variant must match its donor in "
        "every parameter-bearing dimension (only the grid and the head's "
        "out_channels may differ)");
  }
  // The grid itself is free: no shared module reads H or W (blocks operate
  // per window), so a coarse variant can alias a fine donor's weights.
  if (cfg.out_channels == dc.out_channels) {
    nn::ParamList hp;
    head_->collect_params(hp);
    nn::ConstParamList donor_hp;
    backbone.head_->collect_params(donor_hp);
    for (std::size_t i = 0; i < hp.size(); ++i) {
      std::copy_n(donor_hp[i]->value.data(), donor_hp[i]->value.numel(),
                  hp[i]->value.data());
    }
  } else {
    head_->init_zero();
  }

  // Mutable params: the owned head only. Const params: the full list, in
  // the primary constructor's registration order.
  head_->collect_params(params_);
  embed_->collect_params(const_params_);
  time_embed_->collect_params(const_params_);
  for (const auto& b : blocks_) b->collect_params(const_params_);
  final_norm_->collect_params(const_params_);
  head_->collect_params(const_params_);
}

std::int64_t AerisModel::param_count() const {
  return nn::param_count(const_params_);
}

std::int64_t AerisModel::analytic_param_count(const ModelConfig& c) {
  const std::int64_t d = c.dim;
  // Embed / head / time trunk.
  std::int64_t n = (c.in_channels + 1) * d;          // embed (w + b)
  n += (c.time_features + 1) * c.cond_dim;           // shared time linear
  n += d;                                            // final norm gain
  n += (d + 1) * c.out_channels;                     // head
  // Per block: qkv, proj, 2 adaLN heads, swiglu.
  std::int64_t per = (d + 1) * 3 * d;                // qkv
  per += (d + 1) * d;                                // proj
  per += 2 * (c.cond_dim + 1) * 3 * d;               // adaLN heads
  per += 3 * d * c.ffn_hidden;                       // swiglu (no bias)
  return n + c.depth * per;
}

Tensor AerisModel::partition_batch(const Tensor& x, std::int64_t shift) const {
  const std::int64_t b = x.dim(0);
  const std::int64_t nwin = cfg_.windows();
  Tensor out({b * nwin, cfg_.tokens_per_window(), x.dim(3)});
  for (std::int64_t i = 0; i < b; ++i) {
    Tensor sample = slice(x, 0, i, i + 1)
                        .reshaped({x.dim(1), x.dim(2), x.dim(3)});
    Tensor wins = window_partition(sample, cfg_.win_h, cfg_.win_w, shift);
    std::copy_n(wins.data(), wins.numel(), out.data() + i * wins.numel());
  }
  return out;
}

Tensor AerisModel::reverse_batch(const Tensor& windows, std::int64_t batch,
                                 std::int64_t shift) const {
  const std::int64_t nwin = cfg_.windows();
  const std::int64_t c = windows.dim(2);
  Tensor out({batch, cfg_.h, cfg_.w, c});
  const std::int64_t per = nwin * cfg_.tokens_per_window() * c;
  for (std::int64_t i = 0; i < batch; ++i) {
    Tensor wins({nwin, cfg_.tokens_per_window(), c});
    std::copy_n(windows.data() + i * per, per, wins.data());
    Tensor img = window_reverse(wins, cfg_.h, cfg_.w, cfg_.win_h, cfg_.win_w,
                                shift);
    std::copy_n(img.data(), img.numel(), out.data() + i * img.numel());
  }
  return out;
}

Tensor AerisModel::forward(const Tensor& x, const Tensor& t,
                           nn::FwdCtx& ctx) const {
  if (x.ndim() != 4 || x.dim(1) != cfg_.h || x.dim(2) != cfg_.w ||
      x.dim(3) != cfg_.in_channels) {
    throw std::invalid_argument("AerisModel: expected [B,H,W,Cin], got " +
                                shape_to_string(x.shape()));
  }
  if (t.ndim() != 1 || t.dim(0) != x.dim(0)) {
    throw std::invalid_argument("AerisModel: t must be [B]");
  }
  const std::int64_t batch = x.dim(0);
  if (ctx.training()) ctx.slot<ModelCache>(id_).batch = batch;
  const std::int64_t nwin = cfg_.windows();

  // Publish the conditioning-cache key for this call: solver stages drive
  // the whole batch with one t (the schedule is per-pack, never per
  // member), in which case its bit pattern identifies the stage exactly.
  // Mixed-t batches (per-sample training times) keep the cache inactive.
  ctx.clear_cond_key();
  if (ctx.inference() && ctx.cond_cache() != nullptr) {
    std::uint32_t bits0;
    std::memcpy(&bits0, t.data(), sizeof(bits0));
    bool uniform = true;
    for (std::int64_t i = 1; i < batch && uniform; ++i) {
      std::uint32_t bi;
      std::memcpy(&bi, t.data() + i, sizeof(bi));
      uniform = bi == bits0;
    }
    if (uniform) ctx.set_cond_key(bits0);
  }

  // Add the fixed 2D sinusoidal positional field to every channel.
  Tensor xin = x;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t r = 0; r < cfg_.h; ++r) {
      for (std::int64_t cc = 0; cc < cfg_.w; ++cc) {
        const float pe = posenc_.at2(r, cc);
        float* p = xin.data() +
                   ((b * cfg_.h + r) * cfg_.w + cc) * cfg_.in_channels;
        for (std::int64_t ch = 0; ch < cfg_.in_channels; ++ch) p[ch] += pe;
      }
    }
  }

  Tensor cond = time_embed_->forward(t, ctx);  // [B, cond_dim]
  Tensor tokens = embed_->forward(xin, ctx);   // [B, H, W, dim]

  for (std::int64_t l = 0; l < cfg_.depth; ++l) {
    const std::int64_t shift = cfg_.shift_for_layer(l);
    Tensor wins = partition_batch(tokens, shift);
    Tensor out =
        blocks_[static_cast<std::size_t>(l)]->forward(wins, cond, nwin, ctx);
    tokens = reverse_batch(out, batch, shift);
  }

  Tensor normed = final_norm_->forward(tokens, ctx);
  return head_->forward(normed, ctx);
}

Tensor AerisModel::forward(const Tensor& x, const Tensor& t) const {
  nn::FwdCtx ctx(nn::FwdCtx::Mode::kInference);
  return forward(x, t, ctx);
}

Tensor AerisModel::forward(const Tensor& x, const Tensor& t,
                           nn::CondCache* cache,
                           nn::InferPrecision prec) const {
  nn::FwdCtx ctx(nn::FwdCtx::Mode::kInference);
  ctx.set_cond_cache(cache);
  ctx.set_infer_precision(prec);
  return forward(x, t, ctx);
}

Tensor AerisModel::backward(const Tensor& dy, nn::FwdCtx& ctx) {
  ModelCache* cache = ctx.find<ModelCache>(id_);
  if (cache == nullptr || cache->batch == 0) {
    throw std::logic_error("AerisModel: backward before forward");
  }
  const std::int64_t batch = cache->batch;

  Tensor dtokens = final_norm_->backward(head_->backward(dy, ctx), ctx);
  Tensor dcond({batch, cfg_.cond_dim});

  for (std::int64_t l = cfg_.depth - 1; l >= 0; --l) {
    const std::int64_t shift = cfg_.shift_for_layer(l);
    // partition/reverse are permutations: the adjoint of reverse is
    // partition with the same shift, and vice versa.
    Tensor dwins = partition_batch(dtokens, shift);
    Tensor dx =
        blocks_[static_cast<std::size_t>(l)]->backward(dwins, dcond, ctx);
    dtokens = reverse_batch(dx, batch, shift);
  }

  Tensor dxin = embed_->backward(dtokens, ctx);
  time_embed_->backward(dcond, ctx);
  // The positional field is an additive constant: gradient passes through.
  return dxin;
}

}  // namespace aeris::core
