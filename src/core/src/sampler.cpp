#include "aeris/core/sampler.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

Shape stacked_shape(const Shape& shape, std::int64_t e) {
  Shape out;
  out.reserve(shape.size() + 1);
  out.push_back(e);
  out.insert(out.end(), shape.begin(), shape.end());
  return out;
}

/// Fills member slab e of the stacked state with exactly the draws a
/// serial fill_normal from Philox(keys[e].seed) keyed by
/// (stream, keys[e].key*1024 + sample_offset) would produce (same begin=0
/// flat index space per slab). Philox is a stateless seed wrapper, so
/// constructing one per member is free.
void fill_member_noise(Tensor& x, std::int64_t per, std::uint64_t stream,
                       std::span<const MemberKey> keys,
                       std::uint64_t sample_offset) {
  for (std::size_t e = 0; e < keys.size(); ++e) {
    Philox(keys[e].seed)
        .fill_normal_range(
            std::span<float>(x.data() + static_cast<std::int64_t>(e) * per,
                             static_cast<std::size_t>(per)),
            stream, keys[e].key * 1024 + sample_offset, 0);
  }
}

std::vector<MemberKey> shared_seed_keys(const Philox& rng,
                                        std::span<const std::uint64_t> keys) {
  std::vector<MemberKey> mk(keys.size());
  for (std::size_t e = 0; e < keys.size(); ++e) {
    mk[e] = MemberKey{rng.seed(), keys[e]};
  }
  return mk;
}

/// Noise-key offset of the consistency sampler inside a member's 1024-wide
/// key block: disjoint from the TrigFlow sampler (offset 0, churn 1..) and
/// the EDM sampler (offset 512), so teacher and student draws never alias
/// even under one seed. Offset 768 + i keys evaluation i's noise.
constexpr std::uint64_t kConsistencyNoiseOffset = 768;

}  // namespace

SamplerKind sampler_kind_from_env() {
  const char* v = std::getenv("AERIS_SAMPLER");
  return (v != nullptr && std::strcmp(v, "consistency") == 0)
             ? SamplerKind::kConsistency
             : SamplerKind::kDpmSolver;
}

std::vector<float> trigflow_schedule(const TrigFlow& tf,
                                     const TrigSamplerConfig& cfg) {
  if (cfg.steps < 1) throw std::invalid_argument("sampler: steps < 1");
  std::vector<float> ts(static_cast<std::size_t>(cfg.steps) + 1);
  const float lmax = std::log(cfg.sigma_max);
  const float lmin = std::log(cfg.sigma_min);
  const float sd = tf.config().sigma_d;
  for (int i = 0; i < cfg.steps; ++i) {
    const float frac = cfg.steps == 1
                           ? 0.0f
                           : static_cast<float>(i) /
                                 static_cast<float>(cfg.steps - 1);
    const float sigma = std::exp(lmax + frac * (lmin - lmax));
    ts[static_cast<std::size_t>(i)] = std::atan(sigma / sd);
  }
  ts[static_cast<std::size_t>(cfg.steps)] = 0.0f;
  return ts;
}

Tensor sample_trigflow(const DenoiserFn& velocity, const Shape& shape,
                       const TrigFlow& tf, const TrigSamplerConfig& cfg,
                       const Philox& rng, std::uint64_t member) {
  const float sd = tf.config().sigma_d;
  const std::vector<float> ts = trigflow_schedule(tf, cfg);

  // Start from pure noise at t_0: x = sigma_d * z.
  Tensor x(shape);
  rng.fill_normal(x, rng_stream::kSamplerNoise, member * 1024);
  scale_(x, sd);

  constexpr float kHalfPi = 1.5707963267948966f;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    float t = ts[i];
    const float t_next = ts[i + 1];

    // Trigonometric Langevin-like churn: rotate partially back toward the
    // noise sphere with *fresh* noise, increasing t before the ODE step.
    if (cfg.churn > 0.0f && i + 1 < ts.size() - 1) {
      const float delta =
          std::min(cfg.churn * (t - t_next), kHalfPi - t - 1e-4f);
      if (delta > 0.0f) {
        Tensor z(shape);
        rng.fill_normal(z, rng_stream::kChurn,
                        member * 1024 + static_cast<std::uint64_t>(i) + 1);
        Tensor xr = scale(x, std::cos(delta));
        axpy_(xr, sd * std::sin(delta), z);
        x = xr;
        t += delta;
      }
    }

    // Midpoint (two-stage second order) step of dx/dt = v(x, t).
    const float t_mid = 0.5f * (t + t_next);
    Tensor k1 = velocity(x, t);
    Tensor x_mid = x;
    axpy_(x_mid, t_mid - t, k1);
    Tensor k2 = velocity(x_mid, t_mid);
    axpy_(x, t_next - t, k2);
  }
  return x;
}

Tensor sample_trigflow_batched(const DenoiserFn& velocity, const Shape& shape,
                               const TrigFlow& tf, const TrigSamplerConfig& cfg,
                               const Philox& rng,
                               std::span<const std::uint64_t> member_keys) {
  const std::vector<MemberKey> mk = shared_seed_keys(rng, member_keys);
  return sample_trigflow_batched(velocity, shape, tf, cfg, mk);
}

Tensor sample_trigflow_batched(const DenoiserFn& velocity, const Shape& shape,
                               const TrigFlow& tf, const TrigSamplerConfig& cfg,
                               std::span<const MemberKey> members) {
  const float sd = tf.config().sigma_d;
  const std::vector<float> ts = trigflow_schedule(tf, cfg);
  const std::int64_t e = static_cast<std::int64_t>(members.size());
  if (e == 0) throw std::invalid_argument("sampler: empty member_keys");
  const Shape xshape = stacked_shape(shape, e);

  Tensor x(xshape);
  std::int64_t per = 1;
  for (const std::int64_t d : shape) per *= d;
  fill_member_noise(x, per, rng_stream::kSamplerNoise, members, 0);
  scale_(x, sd);

  constexpr float kHalfPi = 1.5707963267948966f;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    float t = ts[i];
    const float t_next = ts[i + 1];

    // The churn angle depends only on the schedule, so all members rotate
    // by the same delta — exactly what each serial call computes.
    if (cfg.churn > 0.0f && i + 1 < ts.size() - 1) {
      const float delta =
          std::min(cfg.churn * (t - t_next), kHalfPi - t - 1e-4f);
      if (delta > 0.0f) {
        Tensor z(xshape);
        fill_member_noise(z, per, rng_stream::kChurn, members,
                          static_cast<std::uint64_t>(i) + 1);
        Tensor xr = scale(x, std::cos(delta));
        axpy_(xr, sd * std::sin(delta), z);
        x = xr;
        t += delta;
      }
    }

    const float t_mid = 0.5f * (t + t_next);
    Tensor k1 = velocity(x, t);
    Tensor x_mid = x;
    axpy_(x_mid, t_mid - t, k1);
    Tensor k2 = velocity(x_mid, t_mid);
    axpy_(x, t_next - t, k2);
  }
  return x;
}

Tensor sample_edm(const DenoiserFn& network, const Shape& shape,
                  const Edm& edm, const EdmSamplerConfig& cfg,
                  const Philox& rng, std::uint64_t member) {
  const std::vector<float> sigmas = edm.schedule(cfg.steps);

  Tensor x(shape);
  rng.fill_normal(x, rng_stream::kSamplerNoise, member * 1024 + 512);
  scale_(x, sigmas[0]);

  auto denoise = [&](const Tensor& xx, float sigma) {
    Tensor xin = scale(xx, edm.c_in(sigma));
    Tensor f = network(xin, edm.c_noise(sigma));
    Tensor d = scale(xx, edm.c_skip(sigma));
    axpy_(d, edm.c_out(sigma), f);
    return d;
  };

  for (std::size_t i = 0; i + 1 < sigmas.size(); ++i) {
    const float s = sigmas[i];
    const float s_next = sigmas[i + 1];
    Tensor d0 = denoise(x, s);
    // d = (x - D) / sigma
    Tensor slope = x;
    sub_(slope, d0);
    scale_(slope, 1.0f / s);
    Tensor x_euler = x;
    axpy_(x_euler, s_next - s, slope);
    if (s_next > 0.0f) {
      Tensor d1 = denoise(x_euler, s_next);
      Tensor slope2 = x_euler;
      sub_(slope2, d1);
      scale_(slope2, 1.0f / s_next);
      axpy_(slope, 1.0f, slope2);
      scale_(slope, 0.5f);
      x_euler = x;
      axpy_(x_euler, s_next - s, slope);
    }
    x = x_euler;
  }
  return x;
}

Tensor sample_edm_batched(const DenoiserFn& network, const Shape& shape,
                          const Edm& edm, const EdmSamplerConfig& cfg,
                          const Philox& rng,
                          std::span<const std::uint64_t> member_keys) {
  const std::vector<MemberKey> mk = shared_seed_keys(rng, member_keys);
  return sample_edm_batched(network, shape, edm, cfg, mk);
}

Tensor sample_edm_batched(const DenoiserFn& network, const Shape& shape,
                          const Edm& edm, const EdmSamplerConfig& cfg,
                          std::span<const MemberKey> members) {
  const std::vector<float> sigmas = edm.schedule(cfg.steps);
  const std::int64_t e = static_cast<std::int64_t>(members.size());
  if (e == 0) throw std::invalid_argument("sampler: empty member_keys");

  Tensor x(stacked_shape(shape, e));
  std::int64_t per = 1;
  for (const std::int64_t d : shape) per *= d;
  fill_member_noise(x, per, rng_stream::kSamplerNoise, members, 512);
  scale_(x, sigmas[0]);

  auto denoise = [&](const Tensor& xx, float sigma) {
    Tensor xin = scale(xx, edm.c_in(sigma));
    Tensor f = network(xin, edm.c_noise(sigma));
    Tensor d = scale(xx, edm.c_skip(sigma));
    axpy_(d, edm.c_out(sigma), f);
    return d;
  };

  for (std::size_t i = 0; i + 1 < sigmas.size(); ++i) {
    const float s = sigmas[i];
    const float s_next = sigmas[i + 1];
    Tensor d0 = denoise(x, s);
    Tensor slope = x;
    sub_(slope, d0);
    scale_(slope, 1.0f / s);
    Tensor x_euler = x;
    axpy_(x_euler, s_next - s, slope);
    if (s_next > 0.0f) {
      Tensor d1 = denoise(x_euler, s_next);
      Tensor slope2 = x_euler;
      sub_(slope2, d1);
      scale_(slope2, 1.0f / s_next);
      axpy_(slope, 1.0f, slope2);
      scale_(slope, 0.5f);
      x_euler = x;
      axpy_(x_euler, s_next - s, slope);
    }
    x = x_euler;
  }
  return x;
}

std::vector<float> consistency_schedule(const TrigFlow& tf,
                                        const ConsistencySamplerConfig& cfg) {
  if (cfg.steps < 1) throw std::invalid_argument("sampler: steps < 1");
  std::vector<float> ts(static_cast<std::size_t>(cfg.steps));
  const float lmax = std::log(cfg.sigma_max);
  const float lmin = std::log(cfg.sigma_min);
  const float sd = tf.config().sigma_d;
  for (int i = 0; i < cfg.steps; ++i) {
    // frac = i / steps (not steps - 1): the last evaluation sits one
    // log-spacing above sigma_min, so multistep refinement re-noises at a
    // useful level instead of collapsing onto the schedule floor.
    const float frac =
        static_cast<float>(i) / static_cast<float>(cfg.steps);
    const float sigma = std::exp(lmax + frac * (lmin - lmax));
    ts[static_cast<std::size_t>(i)] = std::atan(sigma / sd);
  }
  return ts;
}

Tensor sample_consistency(const DenoiserFn& velocity, const Shape& shape,
                          const TrigFlow& tf,
                          const ConsistencySamplerConfig& cfg,
                          const Philox& rng, std::uint64_t member) {
  const float sd = tf.config().sigma_d;
  const std::vector<float> ts = consistency_schedule(tf, cfg);

  // Start from pure noise at t_0: x = sigma_d * z.
  Tensor x(shape);
  rng.fill_normal(x, rng_stream::kSamplerNoise,
                  member * 1024 + kConsistencyNoiseOffset);
  scale_(x, sd);

  Tensor x0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const float t = ts[i];
    if (i > 0) {
      // Re-noise the estimate to t with *fresh* noise:
      // x = cos(t) x0 + sin(t) sigma_d z_i.
      Tensor z(shape);
      rng.fill_normal(z, rng_stream::kSamplerNoise,
                      member * 1024 + kConsistencyNoiseOffset +
                          static_cast<std::uint64_t>(i));
      x = scale(x0, std::cos(t));
      axpy_(x, sd * std::sin(t), z);
    }
    // Consistency estimate f(x, t) = cos(t) x - sin(t) v(x, t).
    Tensor v = velocity(x, t);
    x0 = scale(x, std::cos(t));
    axpy_(x0, -std::sin(t), v);
  }
  return x0;
}

Tensor sample_consistency_batched(const DenoiserFn& velocity,
                                  const Shape& shape, const TrigFlow& tf,
                                  const ConsistencySamplerConfig& cfg,
                                  const Philox& rng,
                                  std::span<const std::uint64_t> member_keys) {
  const std::vector<MemberKey> mk = shared_seed_keys(rng, member_keys);
  return sample_consistency_batched(velocity, shape, tf, cfg, mk);
}

Tensor sample_consistency_batched(const DenoiserFn& velocity,
                                  const Shape& shape, const TrigFlow& tf,
                                  const ConsistencySamplerConfig& cfg,
                                  std::span<const MemberKey> members) {
  const float sd = tf.config().sigma_d;
  const std::vector<float> ts = consistency_schedule(tf, cfg);
  const std::int64_t e = static_cast<std::int64_t>(members.size());
  if (e == 0) throw std::invalid_argument("sampler: empty member_keys");
  const Shape xshape = stacked_shape(shape, e);

  Tensor x(xshape);
  std::int64_t per = 1;
  for (const std::int64_t d : shape) per *= d;
  fill_member_noise(x, per, rng_stream::kSamplerNoise, members,
                    kConsistencyNoiseOffset);
  scale_(x, sd);

  Tensor x0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    // The schedule depends only on the config, never on the state, so all
    // members share t — exactly what each serial call computes.
    const float t = ts[i];
    if (i > 0) {
      Tensor z(xshape);
      fill_member_noise(z, per, rng_stream::kSamplerNoise, members,
                        kConsistencyNoiseOffset +
                            static_cast<std::uint64_t>(i));
      x = scale(x0, std::cos(t));
      axpy_(x, sd * std::sin(t), z);
    }
    Tensor v = velocity(x, t);
    x0 = scale(x, std::cos(t));
    axpy_(x0, -std::sin(t), v);
  }
  return x0;
}

}  // namespace aeris::core
