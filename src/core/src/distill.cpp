#include "aeris/core/distill.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "aeris/tensor/numerics.hpp"
#include "aeris/tensor/ops.hpp"

namespace aeris::core {
namespace {

DistillConfig with_default_weights(DistillConfig cfg, const ModelConfig& mc) {
  if (cfg.weights.lat.empty()) cfg.weights.lat = latitude_weights(mc.h);
  if (cfg.weights.var.empty()) {
    cfg.weights.var = uniform_weights(mc.out_channels);
  }
  return cfg;
}

/// Copies teacher weights into the student and returns the student
/// reference — runs in the member-init list so the copy lands before the
/// optimizer and EMA capture the student's parameter state. Full students
/// copy positionally (the two models must agree in architecture); a
/// shared-backbone student exposes only its owned head as mutable params,
/// so its (shorter) list is matched against the teacher's by name — the
/// backbone needs no copy, it *is* the teacher's storage.
AerisModel& init_student(AerisModel& student, const AerisModel& teacher,
                         const DistillConfig& cfg) {
  const nn::ParamList& sp = student.params();
  const nn::ConstParamList& tp = teacher.params();
  if (!student.shares_backbone() && sp.size() != tp.size()) {
    throw std::invalid_argument(
        "ConsistencyDistiller: student/teacher parameter lists differ");
  }
  for (std::size_t i = 0; i < sp.size(); ++i) {
    const nn::Param* src = nullptr;
    if (student.shares_backbone()) {
      for (const nn::Param* t : tp) {
        if (t->name == sp[i]->name) {
          src = t;
          break;
        }
      }
      if (src == nullptr) {
        throw std::invalid_argument(
            "ConsistencyDistiller: teacher has no parameter named '" +
            sp[i]->name + "'");
      }
    } else {
      src = tp[i];
    }
    if (sp[i]->value.numel() != src->value.numel()) {
      throw std::invalid_argument(
          "ConsistencyDistiller: shape mismatch in '" + sp[i]->name + "'");
    }
    if (cfg.init_from_teacher) {
      std::copy_n(src->value.data(), src->value.numel(),
                  sp[i]->value.data());
    }
  }
  return student;
}

/// The EMA target network mirrors the student's sharing structure: a full
/// student gets an independent full model (its whole state trails the
/// student), a shared-backbone student gets a variant aliasing the same
/// frozen backbone — only the head trails, which is exactly the state the
/// EMA shadow covers.
AerisModel make_target(const AerisModel& student) {
  if (student.shares_backbone()) {
    return AerisModel(student.config(), student);
  }
  return AerisModel(student.config());
}

/// Stacks [H,W,*] channel groups into a single [1,H,W,C] model input
/// (same assembly as DiffusionForecaster).
Tensor build_input(const Tensor& state, const Tensor& prev,
                   const Tensor& forcings) {
  const Tensor* parts[] = {&state, &prev, &forcings};
  Tensor cat = concat(std::span<const Tensor* const>(parts, 3), 2);
  return std::move(cat).reshaped({1, cat.dim(0), cat.dim(1), cat.dim(2)});
}

}  // namespace

ConsistencyDistiller::ConsistencyDistiller(AerisModel& student,
                                           const AerisModel& teacher,
                                           const DistillConfig& cfg)
    : student_(init_student(student, teacher, cfg)),
      teacher_(teacher),
      target_(make_target(student)),
      cfg_(with_default_weights(cfg, student.config())),
      opt_(student.params(), cfg.adam),
      ema_(student.params(), cfg.ema_half_life),
      rng_(cfg.seed),
      ts_(trigflow_schedule(TrigFlow(cfg.trigflow), cfg.teacher)) {
  // The EMA target network starts at the EMA shadow (= the student's
  // initial weights, i.e. the teacher's when init_from_teacher).
  ema_.copy_to(target_.params());
}

Tensor ConsistencyDistiller::frozen_velocity(const AerisModel& model,
                                             nn::CondCache& cache,
                                             const Tensor& x, float t,
                                             const Tensor& prev,
                                             const Tensor& forcings) const {
  const float sd = cfg_.trigflow.sigma_d;
  Tensor xin = scale(x, 1.0f / sd);  // F takes x_t / sigma_d
  Tensor input = build_input(xin, prev, forcings);
  Tensor f = model.forward(input, Tensor({1}, t),
                           nn::cond_cache_enabled() ? &cache : nullptr);
  Tensor v = std::move(f).reshaped({f.dim(1), f.dim(2), f.dim(3)});
  scale_(v, sd);  // velocity = sigma_d * F
  return v;
}

float ConsistencyDistiller::objective_forward_backward(
    std::span<const TrainExample> batch, bool compute_grads) {
  const ModelConfig& mc = student_.config();
  const std::int64_t b = static_cast<std::int64_t>(batch.size());
  if (b == 0) throw std::invalid_argument("distill_step: empty batch");
  const std::int64_t v = mc.out_channels;
  const std::int64_t per_state = mc.h * mc.w * v;
  const int n = cfg_.teacher.steps;

  const TrigFlow tf(cfg_.trigflow);
  const float sd = cfg_.trigflow.sigma_d;

  Tensor input({b, mc.h, mc.w, mc.in_channels});
  Tensor t_vec({b});
  Tensor target({b, mc.h, mc.w, v});
  // Per-sample scalar folded into residual and gradient: the consistency
  // estimate is cos(t) x_t - sin(t) sigma_d F, so the loss in f-space is
  // (sin(t) sigma_d)^2 times the loss in F-space.
  std::vector<float> grad_scale(static_cast<std::size_t>(b), 1.0f);

  for (std::int64_t i = 0; i < b; ++i) {
    const TrainExample& ex = batch[i];
    if (ex.prev.ndim() != 3 || ex.prev.dim(2) != v) {
      throw std::invalid_argument("distill_step: prev must be [H,W,V]");
    }
    // Residual target x0 = x_i - x_{i-1}, like Trainer.
    Tensor x0 = ex.target;
    sub_(x0, ex.prev);

    const std::uint64_t sample_index =
        static_cast<std::uint64_t>(images_seen_ + i);

    // Adjacent teacher discretization times t > s, drawn uniformly over
    // the n intervals, keyed only by the global sample index (SWiPe
    // shared-seed contract).
    const float u = rng_.uniform(rng_stream::kDistillStage, sample_index, 0);
    const int idx = std::min(n - 1, static_cast<int>(u * static_cast<float>(n)));
    const float t = ts_[static_cast<std::size_t>(idx)];
    const float s = ts_[static_cast<std::size_t>(idx) + 1];

    // Forward diffusion to t with the Trainer's noise keying.
    Tensor z(x0.shape());
    rng_.fill_normal(z, rng_stream::kDiffusionNoise, sample_index);
    scale_(z, sd);
    Tensor x_t = tf.interpolate(x0, z, t);

    // One frozen-teacher midpoint ODE step x_t -> x_s — the exact
    // two-stage update sample_trigflow applies at inference.
    const float t_mid = 0.5f * (t + s);
    Tensor k1 =
        frozen_velocity(teacher_, teacher_cache_, x_t, t, ex.prev, ex.forcings);
    Tensor x_mid = x_t;
    axpy_(x_mid, t_mid - t, k1);
    Tensor k2 = frozen_velocity(teacher_, teacher_cache_, x_mid, t_mid, ex.prev,
                                ex.forcings);
    Tensor x_s = x_t;
    axpy_(x_s, s - t, k2);

    // Regression target y = stopgrad f_ema(x_s, s); at the boundary s = 0
    // the consistency function is the identity, so y = x_s exactly.
    Tensor y;
    if (s == 0.0f) {
      y = std::move(x_s);
    } else {
      Tensor vt = frozen_velocity(target_, target_cache_, x_s, s, ex.prev,
                                  ex.forcings);
      y = scale(x_s, std::cos(s));
      axpy_(y, -std::sin(s), vt);
    }

    // In F-space: f_pred - y = -c (F - F_target) with c = sin(t) sigma_d
    // and F_target = (cos(t) x_t - y) / c; weighted_mse over c-scaled
    // residuals reproduces the f-space loss and its gradient.
    const float c = std::sin(t) * sd;
    Tensor f_target = scale(x_t, std::cos(t));
    sub_(f_target, y);
    scale_(f_target, 1.0f / c);
    std::copy_n(f_target.data(), per_state, target.data() + i * per_state);
    t_vec[i] = t;
    grad_scale[static_cast<std::size_t>(i)] = c;

    Tensor state_channels = scale(x_t, 1.0f / sd);
    const Tensor* parts[] = {&state_channels, &ex.prev, &ex.forcings};
    Tensor cat = concat(std::span<const Tensor* const>(parts, 3), 2);
    if (cat.dim(2) != mc.in_channels) {
      throw std::invalid_argument(
          "distill_step: model in_channels does not match distiller inputs");
    }
    std::copy_n(cat.data(), cat.numel(), input.data() + i * cat.numel());
  }

  nn::FwdCtx ctx;
  Tensor f = student_.forward(input, t_vec, ctx);

  Tensor pred_scaled = f;
  Tensor target_scaled = target;
  for (std::int64_t i = 0; i < b; ++i) {
    const float sc = grad_scale[static_cast<std::size_t>(i)];
    float* pp = pred_scaled.data() + i * per_state;
    float* pt = target_scaled.data() + i * per_state;
    for (std::int64_t j = 0; j < per_state; ++j) {
      pp[j] *= sc;
      pt[j] *= sc;
    }
  }

  Tensor grad;
  const float loss = weighted_mse(pred_scaled, target_scaled, cfg_.weights,
                                  compute_grads ? &grad : nullptr);
  if (compute_grads) {
    for (std::int64_t i = 0; i < b; ++i) {
      const float sc = grad_scale[static_cast<std::size_t>(i)];
      float* pg = grad.data() + i * per_state;
      for (std::int64_t j = 0; j < per_state; ++j) pg[j] *= sc;
    }
    student_.backward(grad, ctx);
  }
  return loss;
}

float ConsistencyDistiller::distill_step(std::span<const TrainExample> batch) {
  nn::zero_grads(student_.params());
  const float loss = objective_forward_backward(batch, /*compute_grads=*/true);
  // Same guard discipline as Trainer::train_step: nothing non-finite may
  // reach AdamW/EMA state; throwing leaves every piece of state untouched.
  if (!std::isfinite(loss)) {
    throw NumericalError("distill_step: non-finite loss at images_seen=" +
                         std::to_string(images_seen_));
  }
  for (const nn::Param* p : student_.params()) {
    if (!tensor::all_finite(p->grad)) {
      throw NumericalError("distill_step: non-finite gradient in '" + p->name +
                           "' (flat index " +
                           std::to_string(tensor::first_nonfinite(p->grad)) +
                           ") at images_seen=" + std::to_string(images_seen_));
    }
  }
  if (cfg_.grad_clip > 0.0f) {
    nn::clip_grad_norm(student_.params(), cfg_.grad_clip);
  }
  const float lr = cfg_.schedule.at(images_seen_);
  opt_.step(lr);
  images_seen_ += static_cast<std::int64_t>(batch.size());
  ema_.update(student_.params(), static_cast<std::int64_t>(batch.size()));
  // Refresh the EMA target network and invalidate its conditioning rows:
  // bumping the generation re-keys future lookups, so rows cached under
  // the previous weights can never be hit again.
  ema_.copy_to(target_.params());
  target_cache_.set_generation(target_cache_.generation() + 1);
  return loss;
}

float ConsistencyDistiller::eval_loss(std::span<const TrainExample> batch) {
  return objective_forward_backward(batch, /*compute_grads=*/false);
}

}  // namespace aeris::core
