#include "aeris/metrics/scores.hpp"

#include <cmath>
#include <stdexcept>

#include "aeris/tensor/ops.hpp"

namespace aeris::metrics {
namespace {

void check_field(const Tensor& f, std::int64_t var, const Tensor& lat_w) {
  if (f.ndim() != 3) throw std::invalid_argument("metrics: field must be [V,H,W]");
  if (var < 0 || var >= f.dim(0)) throw std::invalid_argument("metrics: bad var");
  if (lat_w.numel() != f.dim(1)) throw std::invalid_argument("metrics: lat_w");
}

}  // namespace

Tensor ensemble_mean(std::span<const Tensor> members) {
  if (members.empty()) throw std::invalid_argument("ensemble_mean: empty");
  Tensor out = members[0];
  for (std::size_t m = 1; m < members.size(); ++m) add_(out, members[m]);
  scale_(out, 1.0f / static_cast<float>(members.size()));
  return out;
}

double lat_rmse(const Tensor& a, const Tensor& b, std::int64_t var,
                const Tensor& lat_w) {
  check_field(a, var, lat_w);
  if (a.shape() != b.shape()) throw std::invalid_argument("lat_rmse: shapes");
  const std::int64_t h = a.dim(1), w = a.dim(2);
  double acc_err = 0.0;
  for (std::int64_t r = 0; r < h; ++r) {
    const double lw = lat_w[r];
    for (std::int64_t c = 0; c < w; ++c) {
      const double d = a.at3(var, r, c) - b.at3(var, r, c);
      acc_err += lw * d * d;
    }
  }
  return std::sqrt(acc_err / static_cast<double>(h * w));
}

double ensemble_mean_rmse(std::span<const Tensor> members, const Tensor& truth,
                          std::int64_t var, const Tensor& lat_w) {
  return lat_rmse(ensemble_mean(members), truth, var, lat_w);
}

double crps(std::span<const Tensor> members, const Tensor& truth,
            std::int64_t var, const Tensor& lat_w) {
  if (members.empty()) throw std::invalid_argument("crps: empty ensemble");
  check_field(truth, var, lat_w);
  const std::int64_t h = truth.dim(1), w = truth.dim(2);
  const std::size_t m = members.size();
  double total = 0.0;
  std::vector<double> x(m);
  for (std::int64_t r = 0; r < h; ++r) {
    const double lw = lat_w[r];
    for (std::int64_t c = 0; c < w; ++c) {
      for (std::size_t i = 0; i < m; ++i) {
        x[i] = members[i].at3(var, r, c);
      }
      const double y = truth.at3(var, r, c);
      double e_xy = 0.0;
      for (std::size_t i = 0; i < m; ++i) e_xy += std::fabs(x[i] - y);
      e_xy /= static_cast<double>(m);
      double e_xx = 0.0;
      if (m > 1) {
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = i + 1; j < m; ++j) e_xx += std::fabs(x[i] - x[j]);
        }
        // Fair estimator: 2x the upper triangle over M(M-1).
        e_xx = e_xx * 2.0 / (static_cast<double>(m) * static_cast<double>(m - 1));
      }
      total += lw * (e_xy - 0.5 * e_xx);
    }
  }
  return total / static_cast<double>(h * w);
}

double ensemble_spread(std::span<const Tensor> members, std::int64_t var,
                       const Tensor& lat_w) {
  if (members.size() < 2) return 0.0;
  check_field(members[0], var, lat_w);
  const std::int64_t h = members[0].dim(1), w = members[0].dim(2);
  const double m = static_cast<double>(members.size());
  double total = 0.0;
  for (std::int64_t r = 0; r < h; ++r) {
    const double lw = lat_w[r];
    for (std::int64_t c = 0; c < w; ++c) {
      double mu = 0.0, ss = 0.0;
      for (const Tensor& t : members) mu += t.at3(var, r, c);
      mu /= m;
      for (const Tensor& t : members) {
        const double d = t.at3(var, r, c) - mu;
        ss += d * d;
      }
      total += lw * ss / (m - 1.0);
    }
  }
  return std::sqrt(total / static_cast<double>(h * w));
}

double spread_skill_ratio(std::span<const Tensor> members, const Tensor& truth,
                          std::int64_t var, const Tensor& lat_w) {
  const double skill = ensemble_mean_rmse(members, truth, var, lat_w);
  const double spread = ensemble_spread(members, var, lat_w);
  const double m = static_cast<double>(members.size());
  if (skill <= 0.0) return 0.0;
  return std::sqrt((m + 1.0) / m) * spread / skill;
}

double acc(const Tensor& forecast, const Tensor& truth,
           const Tensor& climatology, std::int64_t var, const Tensor& lat_w) {
  check_field(forecast, var, lat_w);
  const std::int64_t h = forecast.dim(1), w = forecast.dim(2);
  double ff = 0.0, tt = 0.0, ft = 0.0;
  for (std::int64_t r = 0; r < h; ++r) {
    const double lw = lat_w[r];
    for (std::int64_t c = 0; c < w; ++c) {
      const double fa = forecast.at3(var, r, c) - climatology.at3(var, r, c);
      const double ta = truth.at3(var, r, c) - climatology.at3(var, r, c);
      ff += lw * fa * fa;
      tt += lw * ta * ta;
      ft += lw * fa * ta;
    }
  }
  const double denom = std::sqrt(ff * tt);
  return denom > 0.0 ? ft / denom : 0.0;
}

double box_mean(const Tensor& field, std::int64_t var, std::int64_t r0,
                std::int64_t r1, std::int64_t c0, std::int64_t c1) {
  if (field.ndim() != 3 || r0 < 0 || r1 > field.dim(1) || c0 < 0 ||
      c1 > field.dim(2) || r0 >= r1 || c0 >= c1) {
    throw std::invalid_argument("box_mean: bad box");
  }
  double acc_v = 0.0;
  for (std::int64_t r = r0; r < r1; ++r) {
    for (std::int64_t c = c0; c < c1; ++c) acc_v += field.at3(var, r, c);
  }
  return acc_v / static_cast<double>((r1 - r0) * (c1 - c0));
}

}  // namespace aeris::metrics
