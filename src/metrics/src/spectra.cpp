#include "aeris/metrics/spectra.hpp"

#include <stdexcept>

#include "aeris/physics/fft.hpp"

namespace aeris::metrics {

std::vector<double> zonal_power_spectrum(const Tensor& field,
                                         std::int64_t var) {
  if (field.ndim() != 3) throw std::invalid_argument("spectrum: [V,H,W]");
  const std::int64_t h = field.dim(1), w = field.dim(2);
  if (!physics::is_pow2(w)) {
    throw std::invalid_argument("spectrum: W must be a power of two");
  }
  std::vector<double> bins(static_cast<std::size_t>(w / 2 + 1), 0.0);
  std::vector<physics::cplx> row(static_cast<std::size_t>(w));
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      row[static_cast<std::size_t>(c)] =
          physics::cplx(field.at3(var, r, c), 0.0);
    }
    physics::fft_inplace(row, /*inverse=*/false);
    for (std::int64_t k = 0; k <= w / 2; ++k) {
      const double amp =
          std::norm(row[static_cast<std::size_t>(k)]) /
          (static_cast<double>(w) * static_cast<double>(w));
      bins[static_cast<std::size_t>(k)] += amp / static_cast<double>(h);
    }
  }
  return bins;
}

double small_scale_power_ratio(const Tensor& forecast, const Tensor& truth,
                               std::int64_t var) {
  const auto pf = zonal_power_spectrum(forecast, var);
  const auto pt = zonal_power_spectrum(truth, var);
  double f = 0.0, t = 0.0;
  for (std::size_t k = pf.size() / 2; k < pf.size(); ++k) {
    f += pf[k];
    t += pt[k];
  }
  return t > 0.0 ? f / t : 0.0;
}

}  // namespace aeris::metrics
