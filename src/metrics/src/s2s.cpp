#include "aeris/metrics/s2s.hpp"

#include <cmath>
#include <stdexcept>

#include "aeris/metrics/scores.hpp"

namespace aeris::metrics {

NinoBox default_nino_box(std::int64_t h, std::int64_t w) {
  // Mirror physics::OceanParams pattern: centered at y = 0.5, x = 0.65
  // with widths ~0.08 / 0.20 — box where the pattern weight > ~0.3.
  NinoBox box;
  box.r0 = static_cast<std::int64_t>(0.40 * static_cast<double>(h));
  box.r1 = static_cast<std::int64_t>(0.60 * static_cast<double>(h));
  box.c0 = static_cast<std::int64_t>(0.50 * static_cast<double>(w));
  box.c1 = static_cast<std::int64_t>(0.80 * static_cast<double>(w));
  return box;
}

double nino_index(const Tensor& field, const NinoBox& box) {
  return box_mean(field, box.sst_var, box.r0, box.r1, box.c0, box.c1);
}

Tensor hovmoller(std::span<const Tensor> sequence, std::int64_t var,
                 std::int64_t r0, std::int64_t r1) {
  if (sequence.empty()) throw std::invalid_argument("hovmoller: empty");
  const std::int64_t w = sequence[0].dim(2);
  Tensor out({static_cast<std::int64_t>(sequence.size()), w});
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    for (std::int64_t c = 0; c < w; ++c) {
      double acc = 0.0;
      for (std::int64_t r = r0; r < r1; ++r) {
        acc += sequence[t].at3(var, r, c);
      }
      out.at2(static_cast<std::int64_t>(t), c) =
          static_cast<float>(acc / static_cast<double>(r1 - r0));
    }
  }
  return out;
}

double hovmoller_correlation(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("hovmoller_correlation: shapes");
  }
  double ma = 0.0, mb = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(a.numel());
  mb /= static_cast<double>(b.numel());
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  const double denom = std::sqrt(saa * sbb);
  return denom > 0.0 ? sab / denom : 0.0;
}

double hovmoller_phase_speed(const Tensor& hov) {
  const std::int64_t t = hov.dim(0), w = hov.dim(1);
  if (t < 2) return 0.0;
  // For each lag, correlation between row i and row i+1 shifted by lag.
  double best_corr = -2.0;
  std::int64_t best_lag = 0;
  for (std::int64_t lag = -w / 4; lag <= w / 4; ++lag) {
    double corr = 0.0;
    for (std::int64_t i = 0; i + 1 < t; ++i) {
      for (std::int64_t c = 0; c < w; ++c) {
        const std::int64_t cc = ((c + lag) % w + w) % w;
        corr += hov.at2(i, c) * hov.at2(i + 1, cc);
      }
    }
    if (corr > best_corr) {
      best_corr = corr;
      best_lag = lag;
    }
  }
  return static_cast<double>(best_lag);
}

double field_std_ratio(const Tensor& forecast, const Tensor& reference,
                       std::int64_t var) {
  auto spatial_std = [&](const Tensor& f) {
    const std::int64_t h = f.dim(1), w = f.dim(2);
    double mu = 0.0;
    for (std::int64_t r = 0; r < h; ++r) {
      for (std::int64_t c = 0; c < w; ++c) mu += f.at3(var, r, c);
    }
    mu /= static_cast<double>(h * w);
    double ss = 0.0;
    for (std::int64_t r = 0; r < h; ++r) {
      for (std::int64_t c = 0; c < w; ++c) {
        const double d = f.at3(var, r, c) - mu;
        ss += d * d;
      }
    }
    return std::sqrt(ss / static_cast<double>(h * w));
  };
  const double ref = spatial_std(reference);
  return ref > 0.0 ? spatial_std(forecast) / ref : 0.0;
}

}  // namespace aeris::metrics
