#include "aeris/metrics/tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aeris::metrics {
namespace {

double wrap_dc(double dc, std::int64_t width) {
  const double w = static_cast<double>(width);
  while (dc > w / 2) dc -= w;
  while (dc < -w / 2) dc += w;
  return dc;
}

double fix_distance(const StormFix& a, const StormFix& b, std::int64_t width) {
  const double dr = a.row - b.row;
  const double dc = wrap_dc(a.col - b.col, width);
  return std::sqrt(dr * dr + dc * dc);
}

}  // namespace

std::vector<StormFix> detect_centers(const Tensor& field,
                                     const TrackerConfig& cfg,
                                     std::int64_t time) {
  if (field.ndim() != 3) throw std::invalid_argument("tracker: [V,H,W]");
  const std::int64_t h = field.dim(1), w = field.dim(2);
  std::vector<StormFix> out;
  for (std::int64_t r = 1; r < h - 1; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      const double p = field.at3(cfg.mslp_var, r, c);
      if (p >= cfg.pressure_threshold) continue;
      bool is_min = true;
      for (std::int64_t dr = -1; dr <= 1 && is_min; ++dr) {
        for (std::int64_t dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const std::int64_t cc = ((c + dc) % w + w) % w;
          if (field.at3(cfg.mslp_var, r + dr, cc) < p) {
            is_min = false;
            break;
          }
        }
      }
      if (!is_min) continue;
      StormFix fix;
      fix.time = time;
      fix.row = static_cast<double>(r);
      fix.col = static_cast<double>(c);
      fix.min_pressure = p;
      double wind = 0.0;
      for (std::int64_t dr = -cfg.wind_radius; dr <= cfg.wind_radius; ++dr) {
        const std::int64_t rr = r + dr;
        if (rr < 0 || rr >= h) continue;
        for (std::int64_t dc = -cfg.wind_radius; dc <= cfg.wind_radius; ++dc) {
          const std::int64_t cc = ((c + dc) % w + w) % w;
          const double u = field.at3(cfg.u_var, rr, cc);
          const double v = field.at3(cfg.v_var, rr, cc);
          wind = std::max(wind, std::sqrt(u * u + v * v));
        }
      }
      fix.max_wind = wind;
      out.push_back(fix);
    }
  }
  return out;
}

std::vector<Track> link_tracks(const std::vector<std::vector<StormFix>>& fixes,
                               const TrackerConfig& cfg, std::int64_t width) {
  std::vector<Track> tracks;
  std::vector<bool> active;
  for (const auto& frame : fixes) {
    std::vector<bool> used(frame.size(), false);
    // Extend active tracks with the nearest unclaimed detection.
    for (std::size_t t = 0; t < tracks.size(); ++t) {
      if (!active[t]) continue;
      const StormFix& last = tracks[t].back();
      double best = cfg.max_step_distance;
      std::ptrdiff_t best_i = -1;
      for (std::size_t i = 0; i < frame.size(); ++i) {
        if (used[i]) continue;
        const double d = fix_distance(last, frame[i], width);
        if (d < best) {
          best = d;
          best_i = static_cast<std::ptrdiff_t>(i);
        }
      }
      if (best_i >= 0) {
        tracks[t].push_back(frame[static_cast<std::size_t>(best_i)]);
        used[static_cast<std::size_t>(best_i)] = true;
      } else {
        active[t] = false;
      }
    }
    // New tracks for unclaimed detections.
    for (std::size_t i = 0; i < frame.size(); ++i) {
      if (!used[i]) {
        tracks.push_back({frame[i]});
        active.push_back(true);
      }
    }
  }
  return tracks;
}

std::optional<Track> track_storm(std::span<const Tensor> sequence,
                                 const TrackerConfig& cfg, double row0,
                                 double col0) {
  if (sequence.empty()) return std::nullopt;
  std::vector<std::vector<StormFix>> fixes;
  fixes.reserve(sequence.size());
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    fixes.push_back(detect_centers(sequence[t], cfg,
                                   static_cast<std::int64_t>(t)));
  }
  const std::int64_t width = sequence[0].dim(2);
  const auto tracks = link_tracks(fixes, cfg, width);
  const Track* best = nullptr;
  double best_d = 1e18;
  StormFix seed;
  seed.row = row0;
  seed.col = col0;
  for (const Track& t : tracks) {
    if (t.front().time != 0) continue;  // must start at the first frame
    const double d = fix_distance(t.front(), seed, width);
    if (d < best_d) {
      best_d = d;
      best = &t;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

double track_error(const Track& a, const Track& b, std::int64_t width) {
  double total = 0.0;
  std::int64_t n = 0;
  for (const StormFix& fa : a) {
    for (const StormFix& fb : b) {
      if (fa.time == fb.time) {
        total += fix_distance(fa, fb, width);
        ++n;
      }
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 1e18;
}

double intensity_error(const Track& a, const Track& b) {
  double total = 0.0;
  std::int64_t n = 0;
  for (const StormFix& fa : a) {
    for (const StormFix& fb : b) {
      if (fa.time == fb.time) {
        total += std::fabs(fa.max_wind - fb.max_wind);
        ++n;
      }
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 1e18;
}

}  // namespace aeris::metrics
