#pragma once

#include <vector>

#include "aeris/tensor/tensor.hpp"

namespace aeris::metrics {

/// Zonal (along-longitude) power spectrum of one variable, averaged over
/// latitude rows: bin k holds the mean squared amplitude of zonal
/// wavenumber k. Used for the blur / spectral-bias diagnostics (§IV-A:
/// deterministic models produce "blurred" forecasts losing small-scale
/// power; Fig. 7b: diffusion keeps "correct power-spectra even at the
/// smallest scales"). W must be a power of two.
std::vector<double> zonal_power_spectrum(const Tensor& field, std::int64_t var);

/// Ratio of high-wavenumber power (top half of bins) between a forecast
/// and the truth: << 1 means the forecast is blurred.
double small_scale_power_ratio(const Tensor& forecast, const Tensor& truth,
                               std::int64_t var);

}  // namespace aeris::metrics
