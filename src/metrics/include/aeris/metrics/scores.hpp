#pragma once

#include <span>
#include <vector>

#include "aeris/tensor/tensor.hpp"

namespace aeris::metrics {

/// Ensemble forecast verification scores in the WeatherBench-2 style the
/// paper evaluates with (§VI-B, Fig. 5): latitude-weighted RMSE of the
/// ensemble mean, the Continuous Ranked Probability Score, and the
/// spread/skill ratio. All fields are [V, H, W]; `var` selects a single
/// variable; `lat_w` is the [H] cos-latitude weight (mean 1).

/// Mean over members, elementwise.
Tensor ensemble_mean(std::span<const Tensor> members);

/// Latitude-weighted RMSE between two fields for one variable.
double lat_rmse(const Tensor& a, const Tensor& b, std::int64_t var,
                const Tensor& lat_w);

/// Latitude-weighted RMSE of the ensemble mean (the deterministic-skill
/// headline metric).
double ensemble_mean_rmse(std::span<const Tensor> members, const Tensor& truth,
                          std::int64_t var, const Tensor& lat_w);

/// Fair (PWM) CRPS estimator for a finite ensemble, averaged over the
/// grid with latitude weights:
///   CRPS = E|X - y| - (1 / (2 M (M-1))) sum_{i,j} |X_i - X_j|
double crps(std::span<const Tensor> members, const Tensor& truth,
            std::int64_t var, const Tensor& lat_w);

/// Latitude-weighted ensemble spread: sqrt of the mean member variance
/// (unbiased over members).
double ensemble_spread(std::span<const Tensor> members, std::int64_t var,
                       const Tensor& lat_w);

/// Spread/skill ratio with the sqrt((M+1)/M) finite-ensemble correction;
/// a calibrated ensemble has SSR ~= 1, under-dispersive < 1 (the paper
/// reports AERIS is under-dispersive, §VII-B).
double spread_skill_ratio(std::span<const Tensor> members, const Tensor& truth,
                          std::int64_t var, const Tensor& lat_w);

/// Anomaly correlation coefficient vs a climatology field.
double acc(const Tensor& forecast, const Tensor& truth,
           const Tensor& climatology, std::int64_t var, const Tensor& lat_w);

/// Area-mean of one variable over a [r0, r1) x [c0, c1) box (heatwave and
/// Nino-box building block).
double box_mean(const Tensor& field, std::int64_t var, std::int64_t r0,
                std::int64_t r1, std::int64_t c0, std::int64_t c1);

}  // namespace aeris::metrics
