#pragma once

#include <optional>
#include <vector>

#include "aeris/tensor/tensor.hpp"

namespace aeris::metrics {

/// Cyclone position/intensity fix at one time.
struct StormFix {
  std::int64_t time = 0;   ///< forecast step index
  double row = 0.0;        ///< grid row of the pressure minimum
  double col = 0.0;        ///< grid col
  double min_pressure = 0.0;
  double max_wind = 0.0;   ///< peak 10m wind near the center
};

using Track = std::vector<StormFix>;

struct TrackerConfig {
  std::int64_t mslp_var = 3;   ///< variable index of MSLP
  std::int64_t u_var = 1;      ///< U10
  std::int64_t v_var = 2;      ///< V10
  double pressure_threshold = 1005.0;  ///< candidate minima must be below
  double max_step_distance = 6.0;      ///< gating radius for linking (cells)
  std::int64_t wind_radius = 3;        ///< window for the max-wind search
};

/// Detects candidate cyclone centers in one [V, H, W] field: local MSLP
/// minima under the threshold, with peak wind diagnosed nearby. This is
/// the standard pressure-minimum TC tracker used for Fig. 6 tracks.
std::vector<StormFix> detect_centers(const Tensor& field,
                                     const TrackerConfig& cfg,
                                     std::int64_t time);

/// Links per-time detections into tracks by nearest-neighbor gating
/// (periodic in longitude).
std::vector<Track> link_tracks(const std::vector<std::vector<StormFix>>& fixes,
                               const TrackerConfig& cfg, std::int64_t width);

/// Convenience: track the strongest storm through a forecast sequence,
/// starting from the detection nearest to (row0, col0).
std::optional<Track> track_storm(std::span<const Tensor> sequence,
                                 const TrackerConfig& cfg, double row0,
                                 double col0);

/// Great-circle-free track error: mean distance (grid cells, periodic in
/// longitude) between matched fixes of two tracks over their overlap.
double track_error(const Track& a, const Track& b, std::int64_t width);

/// Mean absolute intensity (max wind) error over the overlap.
double intensity_error(const Track& a, const Track& b);

}  // namespace aeris::metrics
