#pragma once

#include <vector>

#include "aeris/tensor/tensor.hpp"

namespace aeris::metrics {

/// Subseasonal-to-seasonal diagnostics (paper Fig. 7).

/// Nino-3.4-analogue index: mean SST over a fixed equatorial box.
struct NinoBox {
  std::int64_t sst_var = 4;
  std::int64_t r0 = 0, r1 = 0;  ///< latitude rows of the box
  std::int64_t c0 = 0, c1 = 0;  ///< longitude cols of the box
};

/// Default box matching physics::OceanParams' ENSO pattern on an [h, w]
/// grid (center band, eastern-Pacific-like longitudes).
NinoBox default_nino_box(std::int64_t h, std::int64_t w);

double nino_index(const Tensor& field, const NinoBox& box);

/// Hovmöller matrix (Fig. 7c): variable `var` averaged over rows
/// [r0, r1) at every time -> [T, W] tensor (time-longitude diagram).
Tensor hovmoller(std::span<const Tensor> sequence, std::int64_t var,
                 std::int64_t r0, std::int64_t r1);

/// Anomaly pattern correlation between two Hovmöller diagrams over their
/// common shape (each has its own mean removed).
double hovmoller_correlation(const Tensor& a, const Tensor& b);

/// Mean zonal phase speed of a Hovmöller diagram (cells per step) via the
/// lag-1 cross-correlation peak — positive = eastward propagation.
double hovmoller_phase_speed(const Tensor& hov);

/// Field-stability diagnostic for 90-day rollouts (Fig. 7b): ratio of a
/// forecast's spatial standard deviation to the truth climatology's, per
/// variable. Drifting/collapsing rollouts diverge from 1.
double field_std_ratio(const Tensor& forecast, const Tensor& reference,
                       std::int64_t var);

}  // namespace aeris::metrics
