// Distributed forecast serving over SWiPe ranks with worker-death
// recovery: a ClusterForecastServer distributes one ensemble request's
// member packs across worker ranks while a deterministic fault drill kills
// one of them mid-request. The front-end requeues the dead rank's leased
// steps on the survivors, the incarnation re-forms, and the client's
// trajectories come back bitwise-identical to a single-process
// ForecastServer run of the same request. Exit code 0 iff they do.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "aeris/core/forecaster.hpp"
#include "aeris/serving/cluster.hpp"
#include "aeris/serving/server.hpp"
#include "aeris/swipe/fault.hpp"
#include "aeris/tensor/ops.hpp"

using namespace aeris;

int main() {
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;  // 2 * V + F with V = 5, F = 2
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox kick(101);
  for (nn::Param* p : model.params()) {
    if (p->name.find("head") != std::string::npos ||
        p->name.find("adaln") != std::string::npos) {
      kick.fill_normal(p->value, 7, 0);
      scale_(p->value, 0.1f);
    }
  }

  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  core::ParallelEnsembleEngine engine(model, tf, sc, 0);

  Philox rng(9);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  const core::ForcingFn forcings = [](std::int64_t s) {
    Philox frng(10);
    Tensor f({16, 16, 2});
    frng.fill_normal(f, 2, static_cast<std::uint64_t>(s));
    return f;
  };

  serving::ForecastRequest req;
  req.init = init;
  req.forcings_at = forcings;
  req.members = 6;
  req.steps = 3;
  req.seed = 42;

  // The single-process reference: same engine, same request.
  serving::ForecastResult single;
  {
    serving::ForecastServer server(engine, serving::ServerOptions{});
    single = server.forecast(req);
  }

  // The cluster: rank 0 fronts, the rest work; AERIS_SERVE_RANKS and
  // friends override (see README). The fault drill kills rank 2 on its
  // second result send — mid-request, while it holds leased member steps.
  serving::ClusterOptions co = serving::ClusterOptions::from_env();
  co.serve.batch = 2;  // split the ensemble into multi-rank packs
  auto plan = std::make_shared<swipe::FaultPlan>();
  plan->add(swipe::FaultEvent{swipe::FaultKind::kKillRank, 2, 1});
  co.fault_plan = plan;
  serving::ClusterForecastServer cluster(engine, co);
  const serving::ForecastResult got = cluster.forecast(req);

  const serving::ServerStats st = cluster.stats();
  std::printf("== cluster forecast drill ==\n");
  std::printf(
      "ranks=%d alive_workers=%d workers_lost=%lld "
      "requeued_member_steps=%lld member_steps=%lld completed=%lld\n",
      co.ranks, cluster.alive_workers(),
      static_cast<long long>(st.workers_lost),
      static_cast<long long>(st.requeued_member_steps),
      static_cast<long long>(st.member_steps),
      static_cast<long long>(st.completed));

  bool bitwise = got.status == serving::RequestStatus::kOk &&
                 single.status == serving::RequestStatus::kOk &&
                 got.trajectories.size() == single.trajectories.size();
  for (std::size_t m = 0; bitwise && m < single.trajectories.size(); ++m) {
    bitwise = got.trajectories[m].size() == single.trajectories[m].size();
    for (std::size_t s = 0; bitwise && s < single.trajectories[m].size();
         ++s) {
      const Tensor& a = single.trajectories[m][s];
      const Tensor& b = got.trajectories[m][s];
      bitwise = a.shape() == b.shape() &&
                std::memcmp(a.data(), b.data(),
                            static_cast<std::size_t>(a.numel()) *
                                sizeof(float)) == 0;
    }
  }
  std::printf(
      "recovered request bitwise-identical to single-process server: %s\n",
      bitwise ? "yes" : "NO");
  const bool drilled = st.workers_lost >= 1 && st.requeued_member_steps > 0;
  if (!drilled) std::printf("fault drill did not fire as scripted\n");
  return bitwise && drilled ? 0 : 1;
}
