// Subseasonal-to-seasonal outlook (the paper's Fig. 1d / Fig. 7 workload):
// a 45-day autoregressive rollout monitoring the ENSO-analogue index and
// field stability — the regime where multistep diffusion solvers are
// reported to destabilize and AERIS does not.
#include <cmath>
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/s2s.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  DomainConfig cfg;
  cfg.samples = 220;
  cfg.train_steps = 120;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  auto model = train_or_load_model(d, core::Objective::kTrigFlow,
                                   "aeris_cache");

  const std::int64_t t0 = d.ds.test_begin() + 1;
  const std::int64_t steps = std::min<std::int64_t>(45, d.ds.size() - 2 - t0);
  auto ens = forecast_ensemble(*model, core::Objective::kTrigFlow, d, t0,
                               steps, 2);
  auto truth = truth_sequence(d, t0, steps);

  const auto box = metrics::default_nino_box(cfg.grid, cfg.grid);
  std::printf("== %lld-day outlook ==\n", static_cast<long long>(steps));
  std::printf("%-5s %10s %10s %14s\n", "day", "nino(tru)", "nino(ens)",
              "std-ratio SST");
  for (std::int64_t s = 4; s < steps; s += 5) {
    double mean = 0.0;
    for (auto& m : ens) mean += metrics::nino_index(m[s], box);
    mean /= static_cast<double>(ens.size());
    std::printf("%-5lld %10.2f %10.2f %14.2f\n", static_cast<long long>(s + 1),
                metrics::nino_index(truth[s], box), mean,
                metrics::field_std_ratio(ens[0][s], truth[s], 4));
  }
  bool finite = true;
  for (float x : ens[0].back().flat()) finite = finite && std::isfinite(x);
  std::printf("rollout finite and bounded at day %lld: %s\n",
              static_cast<long long>(steps), finite ? "yes" : "NO");
  return 0;
}
