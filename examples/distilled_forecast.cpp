// Few-step consistency distillation, end to end (the Swift recipe on the
// QG world): train a tiny TrigFlow teacher, distill a 2-step consistency
// student from it, then A/B the two through ONE ForecastServer — teacher
// requests integrate the 10-step ODE, student requests set
// req.sampler = kConsistency and finish in 2 network evaluations.
// Prints CRPS / spread-skill / small-scale spectra and wall-clock per
// forecast; the exit code enforces the skill-parity gate of
// EXPERIMENTS.md ("Few-step consistency parity"), so this doubles as a
// runnable regression check for the distillation path.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "aeris/core/distill.hpp"
#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/scores.hpp"
#include "aeris/metrics/spectra.hpp"
#include "aeris/serving/server.hpp"

using namespace aeris;
using namespace aeris::experiments;

namespace {

// EXPERIMENTS.md "Few-step consistency parity" thresholds: the 2-step
// student must stay within these factors of the 10-step teacher on the
// QG test set (averaged over launch dates and leads, T850).
constexpr double kCrpsFactor = 1.30;  // student CRPS <= 1.30 x teacher
constexpr double kSsrFactor = 0.45;   // student SSR  >= 0.45 x teacher
// Spectra gate in log space: small_scale_power_ratio is measured against
// the *truth* spectrum (1.0 = perfectly sharp), so the student must land
// no more than 2x further from truth than the teacher does:
//   |log r_student| <= |log r_teacher| + log(2).
constexpr double kSpectraLogSlack = 0.6931;

struct AbScores {
  double crps = 0;
  double ssr = 0;
  double spectra = 0;  // small-scale power vs truth, day `steps`
  double wall_ms = 0;
};

AbScores score_request(serving::ForecastServer& server, const Domain& d,
                       std::int64_t t0, std::int64_t steps,
                       std::int64_t members,
                       std::optional<core::SamplerKind> sampler) {
  serving::ForecastRequest req;
  req.init = d.ds.standardized_tokens(t0);
  req.forcings_at = [&d, t0](std::int64_t s) {
    return d.ds.forcing_tokens(t0 + s);
  };
  req.members = members;
  req.steps = steps;
  req.seed = static_cast<std::uint64_t>(1000 + t0);
  req.sampler = sampler;

  const auto start = std::chrono::steady_clock::now();
  const serving::ForecastResult r = server.forecast(req);
  const auto end = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n", r.error_message.c_str());
    std::exit(2);
  }

  const auto truth = truth_sequence(d, t0, steps);
  AbScores sc;
  sc.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  for (std::int64_t s = 0; s < steps; ++s) {
    std::vector<Tensor> mem;
    mem.reserve(static_cast<std::size_t>(members));
    for (const auto& m : r.trajectories) {
      mem.push_back(d.ds.unstandardize(m[static_cast<std::size_t>(s)]));
    }
    sc.crps += metrics::crps(mem, truth[static_cast<std::size_t>(s)], 6,
                             d.lat_w);
    sc.ssr += metrics::spread_skill_ratio(
        mem, truth[static_cast<std::size_t>(s)], 6, d.lat_w);
    if (s == steps - 1) {
      sc.spectra = metrics::small_scale_power_ratio(
          mem[0], truth[static_cast<std::size_t>(s)], 5);
    }
  }
  sc.crps /= static_cast<double>(steps);
  sc.ssr /= static_cast<double>(steps);
  return sc;
}

}  // namespace

int main() {
  DomainConfig cfg;
  cfg.samples = 220;
  cfg.train_steps = 120;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  auto teacher = train_or_load_model(d, core::Objective::kTrigFlow,
                                     "aeris_cache");

  // Distill: the student starts at the teacher weights and learns to jump
  // along the teacher's own 10-step inference discretization. A few
  // hundred steps suffice at this scale because the map being compressed
  // (10 ODE stages -> 1 evaluation per stage pair) is already close to
  // the identity in each local jump.
  core::TrigSamplerConfig teacher_sampler = d.cfg.sampler;
  teacher_sampler.steps = 10;
  core::DistillConfig dc;
  dc.trigflow = d.cfg.trigflow;
  dc.teacher = teacher_sampler;
  dc.schedule.peak = 1e-3f;
  dc.schedule.warmup = 16;
  dc.schedule.total = 100'000'000;
  dc.schedule.decay = 1;
  dc.ema_half_life = 400.0f;
  dc.grad_clip = 1.0f;
  dc.seed = d.cfg.seed + 21;
  core::AerisModel student(
      model_config(d.cfg, core::Objective::kTrigFlow), d.cfg.seed + 20);
  core::ConsistencyDistiller distiller(student, *teacher, dc);

  const std::int64_t distill_steps = 600, batch = 4;
  const Philox shuffle_rng(d.cfg.seed + 22);
  std::vector<std::int64_t> order;
  std::uint64_t epoch = 0;
  float first_loss = 0, last_loss = 0;
  for (std::int64_t step = 0; step < distill_steps; ++step) {
    std::vector<core::TrainExample> b;
    for (std::int64_t i = 0; i < batch; ++i) {
      if (order.empty()) order = d.ds.train_indices(shuffle_rng, epoch++);
      b.push_back(d.ds.example(order.back()));
      order.pop_back();
    }
    const float loss = distiller.distill_step(b);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  distiller.use_ema_weights();
  std::printf("distilled %lld steps: consistency loss %.4f -> %.4f\n",
              static_cast<long long>(distill_steps), first_loss, last_loss);

  // One server, two sampler families: the engine's default path is the
  // 10-step teacher ODE; the attached student serves kConsistency
  // requests in 2 evaluations.
  core::ConsistencySamplerConfig cc;
  cc.steps = 2;
  cc.sigma_min = teacher_sampler.sigma_min;
  cc.sigma_max = teacher_sampler.sigma_max;
  core::ParallelEnsembleEngine engine(*teacher, d.cfg.trigflow,
                                      teacher_sampler, 0);
  engine.set_consistency(&student, cc);
  serving::ServerOptions opts;
  opts.workers = 2;
  opts.batch = 8;
  serving::ForecastServer server(engine, opts);

  const std::int64_t steps = 5, members = 4, launches = 3;
  AbScores t_sum, s_sum;
  std::printf("\n== teacher (10-step ODE) vs student (2-step consistency),"
              " T850 ==\n");
  std::printf("%-8s %-8s %10s %8s %10s %10s\n", "launch", "path", "CRPS",
              "SSR", "smallscale", "wall[ms]");
  for (std::int64_t l = 0; l < launches; ++l) {
    const std::int64_t t0 = d.ds.test_begin() + 1 + 2 * l;
    const AbScores t =
        score_request(server, d, t0, steps, members, std::nullopt);
    const AbScores s = score_request(server, d, t0, steps, members,
                                     core::SamplerKind::kConsistency);
    std::printf("%-8lld %-8s %10.3f %8.2f %10.2f %10.1f\n",
                static_cast<long long>(t0), "teacher", t.crps, t.ssr,
                t.spectra, t.wall_ms);
    std::printf("%-8s %-8s %10.3f %8.2f %10.2f %10.1f\n", "", "student",
                s.crps, s.ssr, s.spectra, s.wall_ms);
    t_sum.crps += t.crps; t_sum.ssr += t.ssr;
    t_sum.spectra += t.spectra; t_sum.wall_ms += t.wall_ms;
    s_sum.crps += s.crps; s_sum.ssr += s.ssr;
    s_sum.spectra += s.spectra; s_sum.wall_ms += s.wall_ms;
  }
  const double n = static_cast<double>(launches);
  std::printf("\nmean: teacher CRPS %.3f SSR %.2f spec %.2f %.1fms | "
              "student CRPS %.3f SSR %.2f spec %.2f %.1fms (%.1fx faster)\n",
              t_sum.crps / n, t_sum.ssr / n, t_sum.spectra / n,
              t_sum.wall_ms / n, s_sum.crps / n, s_sum.ssr / n,
              s_sum.spectra / n, s_sum.wall_ms / n,
              t_sum.wall_ms / std::max(1e-9, s_sum.wall_ms));

  // Parity gate (EXPERIMENTS.md "Few-step consistency parity").
  bool ok = true;
  if (s_sum.crps > kCrpsFactor * t_sum.crps) {
    std::fprintf(stderr, "GATE: student CRPS %.3f > %.2f x teacher %.3f\n",
                 s_sum.crps / n, kCrpsFactor, t_sum.crps / n);
    ok = false;
  }
  if (s_sum.ssr < kSsrFactor * t_sum.ssr) {
    std::fprintf(stderr, "GATE: student SSR %.2f < %.2f x teacher %.2f\n",
                 s_sum.ssr / n, kSsrFactor, t_sum.ssr / n);
    ok = false;
  }
  const double t_spec_dist = std::abs(std::log(t_sum.spectra / n));
  const double s_spec_dist = std::abs(std::log(s_sum.spectra / n));
  if (s_spec_dist > t_spec_dist + kSpectraLogSlack) {
    std::fprintf(stderr,
                 "GATE: student small-scale power %.2f is %.2f log-units "
                 "from truth vs teacher's %.2f (+%.2f allowed)\n",
                 s_sum.spectra / n, s_spec_dist, t_spec_dist,
                 kSpectraLogSlack);
    ok = false;
  }
  std::printf("parity gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
