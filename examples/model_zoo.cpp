// A model zoo behind one serving front-end: a full-skill fine-grid model
// plus a shared-backbone coarse "preview" variant registered in a
// ModelRegistry, with env-overridable routing (AERIS_SERVE_MODEL /
// AERIS_SERVE_FALLBACK_MODEL) and a cross-model degrade edge fine ->
// coarse. Phase 1 shows per-request routing (pinned names and quality
// classes) and checks the multi-model server's unstressed pinned path
// bitwise against a single-model server. Phase 2 forces the zeroth
// DegradePolicy rung and checks the re-routed request bitwise against the
// coarse variant serving the area-mean-coarsened request directly. The
// exit code reflects both checks, so this doubles as a runnable
// regression check for the registry path.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aeris/core/forecaster.hpp"
#include "aeris/serving/registry.hpp"
#include "aeris/serving/server.hpp"
#include "aeris/tensor/ops.hpp"

using namespace aeris;

namespace {

core::ModelConfig grid_cfg(std::int64_t h, std::int64_t w) {
  core::ModelConfig c;
  c.h = h;
  c.w = w;
  c.in_channels = 8;  // 2 * V + F with V = 3, F = 2
  c.out_channels = 3;
  c.dim = 32;
  c.depth = 2;
  c.heads = 4;
  c.ffn_hidden = 64;
  c.win_h = 4;
  c.win_w = 4;
  c.cond_dim = 32;
  c.time_features = 8;
  return c;
}

Tensor make_init(std::int64_t h, std::int64_t w, std::uint64_t key) {
  Philox rng(5);
  Tensor init({h, w, 3});
  rng.fill_normal(init, 1, key);
  return init;
}

Tensor forcing_grid(std::int64_t h, std::int64_t w, std::int64_t step) {
  Philox rng(6);
  Tensor f({h, w, 2});
  rng.fill_normal(f, 2, static_cast<std::uint64_t>(step));
  return f;
}

bool trajs_bitwise(const std::vector<std::vector<Tensor>>& got,
                   const std::vector<std::vector<Tensor>>& ref) {
  if (got.size() != ref.size()) return false;
  for (std::size_t m = 0; m < ref.size(); ++m) {
    if (got[m].size() != ref[m].size()) return false;
    for (std::size_t s = 0; s < ref[m].size(); ++s) {
      if (std::memcmp(got[m][s].data(), ref[m][s].data(),
                      static_cast<std::size_t>(ref[m][s].numel()) *
                          sizeof(float)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  // The zoo: a 16x16 full-skill model and an 8x8 preview variant that
  // aliases its backbone (one weight copy in memory; only the head and the
  // grid-tied position encoding are per-variant).
  const core::ModelConfig fine_cfg = grid_cfg(16, 16);
  const core::ModelConfig coarse_cfg = grid_cfg(8, 8);
  core::AerisModel fine_model(fine_cfg, 7);
  core::AerisModel coarse_model(coarse_cfg, fine_model);

  core::TrigFlowConfig tf;
  core::TrigSamplerConfig ts;
  ts.steps = 6;
  core::ParallelEnsembleEngine fine_eng(fine_model, tf, ts, 0);
  core::ParallelEnsembleEngine coarse_eng(coarse_model, tf, ts, 0);

  serving::ModelRegistry registry;
  registry.add("fine", fine_eng, /*skill_tier=*/1);
  registry.add("coarse", coarse_eng, /*skill_tier=*/0);
  registry.set_fallback("fine", "coarse");
  // Deployment knobs: AERIS_SERVE_MODEL re-points the default variant,
  // AERIS_SERVE_FALLBACK_MODEL rewires its degrade edge. Unknown names
  // fail loudly here, at startup.
  registry.overlay_env();

  std::int64_t shared = 0, owned = 0;
  const core::AerisModel& cm = coarse_model;
  const core::AerisModel& fm = fine_model;
  for (std::size_t i = 0; i < cm.params().size(); ++i) {
    (cm.params()[i] == fm.params()[i] ? shared : owned) +=
        cm.params()[i]->value.numel();
  }
  std::printf("== model zoo ==\n");
  std::printf("%-8s %6s %8s %10s\n", "variant", "tier", "grid", "fallback");
  for (std::int64_t i = 0; i < registry.size(); ++i) {
    const serving::ModelVariant& v = registry.at(i);
    const core::ModelConfig& mc = v.engine->model().config();
    std::printf("%-8s %6d %5lldx%-3lld %10s\n", v.name.c_str(), v.skill_tier,
                static_cast<long long>(mc.h), static_cast<long long>(mc.w),
                v.fallback >= 0 ? registry.at(v.fallback).name.c_str() : "-");
  }
  std::printf("coarse variant aliases %lld backbone weights, owns %lld "
              "(head)\n\n",
              static_cast<long long>(shared), static_cast<long long>(owned));

  const std::int64_t members = 3, steps = 4;
  auto fine_forcing = [](std::int64_t s) { return forcing_grid(16, 16, s); };
  auto coarse_forcing = [](std::int64_t s) { return forcing_grid(8, 8, s); };
  bool ok = true;

  // Phase 1: one server, per-request routing; the pinned fine request must
  // be bitwise what a single-model server serves.
  {
    serving::ServerOptions opts;
    opts.workers = 2;
    opts.batch = 8;
    serving::ForecastServer zoo(registry, opts);

    serving::ForecastRequest fine_req;
    fine_req.init = make_init(16, 16, 0);
    fine_req.forcings_at = fine_forcing;
    fine_req.members = members;
    fine_req.steps = steps;
    fine_req.seed = 42;
    fine_req.model = "fine";
    const serving::ForecastResult fr = zoo.forecast(fine_req);

    serving::ForecastRequest preview_req;
    preview_req.init = make_init(8, 8, 1);
    preview_req.forcings_at = coarse_forcing;
    preview_req.members = members;
    preview_req.steps = steps;
    preview_req.seed = 43;
    preview_req.quality = serving::QualityClass::kPreview;
    const serving::ForecastResult pr = zoo.forecast(preview_req);

    if (!fr.ok() || !pr.ok()) {
      std::fprintf(stderr, "phase 1 forecast failed: %s %s\n",
                   fr.error_message.c_str(), pr.error_message.c_str());
      return 2;
    }
    std::printf("== phase 1: routing ==\n");
    std::printf("pinned model=\"fine\"        -> served by %-8s (%lld "
                "members x %lld steps)\n",
                fr.model_served.c_str(), static_cast<long long>(members),
                static_cast<long long>(steps));
    std::printf("quality=kPreview (no name) -> served by %-8s\n",
                pr.model_served.c_str());

    serving::ForecastRequest plain = fine_req;
    plain.model.clear();
    serving::ForecastServer fine_only(fine_eng, serving::ServerOptions{});
    const serving::ForecastResult ref = fine_only.forecast(plain);
    const bool bitwise = ref.ok() && trajs_bitwise(fr.trajectories,
                                                   ref.trajectories);
    std::printf("unstressed pinned request vs single-model server: %s\n\n",
                bitwise ? "bitwise identical" : "MISMATCH");
    ok = ok && bitwise && pr.model_served == "coarse";
  }

  // Phase 2: the cross-model rung. Forcing the zeroth rung re-routes the
  // fine request onto the coarse variant, area-mean-coarsening its init
  // and forcings; the result must be bitwise what the coarse variant
  // serves for the coarsened request directly.
  {
    serving::ServerOptions opts;
    opts.degrade.fallback_wait_threshold_ms = -1.0;  // always overloaded
    serving::ForecastServer stressed(registry, opts);

    serving::ForecastRequest req;
    req.init = make_init(16, 16, 2);
    req.forcings_at = fine_forcing;
    req.members = members;
    req.steps = steps;
    req.seed = 44;
    req.model = "fine";
    const serving::ForecastResult r = stressed.forecast(req);
    if (!r.ok()) {
      std::fprintf(stderr, "phase 2 forecast failed: %s\n",
                   r.error_message.c_str());
      return 2;
    }

    core::DiffusionForecaster serial(coarse_model, tf, ts, req.seed);
    const auto ref = serial.ensemble_rollout(
        serving::coarsen_mean(req.init, 8, 8),
        [&](std::int64_t s) {
          return serving::coarsen_mean(fine_forcing(s), 8, 8);
        },
        steps, members);
    const bool bitwise = trajs_bitwise(r.trajectories, ref);

    const serving::ServerStats stats = stressed.stats();
    std::printf("== phase 2: cross-model degradation ==\n");
    std::printf("requested \"fine\" under load -> served by %s (degraded=%s)"
                "\n",
                r.model_served.c_str(), r.degraded ? "yes" : "no");
    std::printf("stats: degraded_to_fallback_model=%lld  "
                "per_model[fine].fell_back=%lld  "
                "per_model[coarse].completed=%lld\n",
                static_cast<long long>(stats.degraded_to_fallback_model),
                static_cast<long long>(
                    stats.per_model.at("fine").degraded_to_fallback_model),
                static_cast<long long>(
                    stats.per_model.at("coarse").completed));
    std::printf("re-routed request vs coarse variant on coarsened fields: "
                "%s\n\n",
                bitwise ? "bitwise identical" : "MISMATCH");
    ok = ok && bitwise && r.degraded && r.model_served == "coarse" &&
         stats.degraded_to_fallback_model == 1;
  }

  std::printf("model zoo checks: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
