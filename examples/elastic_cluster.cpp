// Elastic cluster membership: park -> rejoin -> un-park, end to end.
//
// A ClusterForecastServer with rejoin enabled loses BOTH its workers to a
// stacked fault plan mid-request and drops below quorum: the in-flight
// request drains with the typed WorkerLostError and the server parks,
// refusing (typed) instead of serving. A joiner announcing the wrong
// registry fingerprint is turned away before it is ever leased work; two
// matching joiners then re-admit under a fresh incarnation, the park
// lifts, and the resubmitted request completes bitwise-identical to a
// single-process ForecastServer run. Exit code 0 iff the whole script —
// typed drain, typed refusal, fingerprint reject, un-park, bitwise
// completion and the stats that prove each leg — holds.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "aeris/core/forecaster.hpp"
#include "aeris/serving/cluster.hpp"
#include "aeris/serving/server.hpp"
#include "aeris/swipe/fault.hpp"
#include "aeris/tensor/ops.hpp"

using namespace aeris;

namespace {

bool wait_until(const std::function<bool()>& pred, double timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    if (pred()) return true;
    const double waited =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (waited >= timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool bitwise_equal(const serving::ForecastResult& a,
                   const serving::ForecastResult& b) {
  if (a.status != serving::RequestStatus::kOk ||
      b.status != serving::RequestStatus::kOk ||
      a.trajectories.size() != b.trajectories.size()) {
    return false;
  }
  for (std::size_t m = 0; m < a.trajectories.size(); ++m) {
    if (a.trajectories[m].size() != b.trajectories[m].size()) return false;
    for (std::size_t s = 0; s < a.trajectories[m].size(); ++s) {
      const Tensor& x = a.trajectories[m][s];
      const Tensor& y = b.trajectories[m][s];
      if (x.shape() != y.shape() ||
          std::memcmp(x.data(), y.data(),
                      static_cast<std::size_t>(x.numel()) * sizeof(float)) !=
              0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;  // 2 * V + F with V = 5, F = 2
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox kick(101);
  for (nn::Param* p : model.params()) {
    if (p->name.find("head") != std::string::npos ||
        p->name.find("adaln") != std::string::npos) {
      kick.fill_normal(p->value, 7, 0);
      scale_(p->value, 0.1f);
    }
  }

  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  core::ParallelEnsembleEngine engine(model, tf, sc, 0);

  Philox rng(9);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  const core::ForcingFn forcings = [](std::int64_t s) {
    Philox frng(10);
    Tensor f({16, 16, 2});
    frng.fill_normal(f, 2, static_cast<std::uint64_t>(s));
    return f;
  };

  serving::ForecastRequest req;
  req.init = init;
  req.forcings_at = forcings;
  req.members = 6;
  req.steps = 3;
  req.seed = 42;

  // The single-process reference: same engine, same request.
  serving::ForecastResult single;
  {
    serving::ForecastServer server(engine, serving::ServerOptions{});
    single = server.forecast(req);
  }

  // The elastic cluster: two workers, quorum two, rejoin on. The stacked
  // plan kills BOTH workers on their first result send — exact-ordinal
  // kills now fire even into an already-poisoned world, so both deaths
  // land and membership collapses to zero.
  serving::ClusterOptions co = serving::ClusterOptions::from_env();
  co.ranks = 3;
  co.min_quorum = 2;
  co.rejoin = true;
  co.serve.batch = 2;
  auto plan = std::make_shared<swipe::FaultPlan>();
  plan->add(swipe::FaultEvent{swipe::FaultKind::kKillRank, 1, 0});
  plan->add(swipe::FaultEvent{swipe::FaultKind::kKillRank, 2, 0});
  co.fault_plan = plan;
  serving::ClusterForecastServer cluster(engine, co);

  std::printf("== elastic cluster drill ==\n");

  // 1. Quorum loss: the in-flight request drains with the typed error.
  const serving::ForecastResult drained = cluster.forecast(req);
  const bool drained_typed =
      drained.status == serving::RequestStatus::kWorkerLost &&
      drained.error_message.find("quorum") != std::string::npos;
  std::printf("in-flight request drained typed below quorum: %s\n",
              drained_typed ? "yes" : "NO");

  // 2. Parked: new admissions are refused with the same typed error.
  const serving::ForecastResult refused = cluster.forecast(req);
  const bool refused_typed =
      refused.status == serving::RequestStatus::kWorkerLost &&
      cluster.parked();
  std::printf("parked server refuses admissions typed: %s\n",
              refused_typed ? "yes" : "NO");

  // 3. A joiner with the wrong registry fingerprint never gets work.
  cluster.offer_worker(/*announced_fingerprint=*/0xBADC0DEull);
  const bool fp_rejected = wait_until(
      [&] { return cluster.stats().registry_fingerprint_rejects == 1; },
      10000.0) &&
      cluster.parked() && cluster.alive_workers() == 0;
  std::printf("mismatched registry fingerprint rejected, still parked: %s\n",
              fp_rejected ? "yes" : "NO");

  // 4. Two matching joiners restore quorum; the park lifts.
  cluster.offer_worker();
  cluster.offer_worker();
  const bool unparked =
      wait_until([&] { return !cluster.parked(); }, 10000.0) &&
      wait_until([&] { return cluster.alive_workers() == 2; }, 10000.0);
  std::printf("membership recovered, server un-parked: %s\n",
              unparked ? "yes" : "NO");

  // 5. The resubmitted request completes bitwise vs the single-process
  //    reference — park, rejoin and un-park left no numerical trace.
  const serving::ForecastResult got = cluster.forecast(req);
  const bool bitwise = bitwise_equal(got, single);
  std::printf(
      "request completed across park -> rejoin -> un-park bitwise: %s\n",
      bitwise ? "yes" : "NO");

  const serving::ServerStats st = cluster.stats();
  std::printf(
      "workers_lost=%lld quorum_drains=%lld registry_fingerprint_rejects=%lld "
      "workers_joined=%lld unparks=%lld completed=%lld incarnation=%llu\n",
      static_cast<long long>(st.workers_lost),
      static_cast<long long>(st.quorum_drains),
      static_cast<long long>(st.registry_fingerprint_rejects),
      static_cast<long long>(st.workers_joined),
      static_cast<long long>(st.unparks),
      static_cast<long long>(st.completed),
      static_cast<unsigned long long>(cluster.incarnation()));
  const bool counters = st.workers_lost == 2 && st.quorum_drains == 1 &&
                        st.registry_fingerprint_rejects == 1 &&
                        st.workers_joined == 2 && st.unparks == 1 &&
                        st.completed == 1;
  if (!counters) std::printf("stats do not match the script\n");

  return drained_typed && refused_typed && fp_rejected && unparked &&
                 bitwise && counters
             ? 0
             : 1;
}
