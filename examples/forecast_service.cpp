// Resilient forecast serving: one shared model behind a ForecastServer,
// hammered by concurrent clients with mixed demands — a clean ensemble
// request, a tight deadline, a flaky forcing source, and a poisoned one
// that diverges numerically. Every client gets a result or a typed error;
// the unstressed request's trajectories are bitwise the serial forecast.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "aeris/core/forecaster.hpp"
#include "aeris/serving/server.hpp"
#include "aeris/tensor/ops.hpp"

using namespace aeris;

namespace {

const char* status_name(serving::RequestStatus s) {
  switch (s) {
    case serving::RequestStatus::kOk: return "OK";
    case serving::RequestStatus::kRejected: return "REJECTED";
    case serving::RequestStatus::kDeadlineExceeded: return "DEADLINE";
    case serving::RequestStatus::kNumericalError: return "NUMERICAL";
    case serving::RequestStatus::kFault: return "FAULT";
    case serving::RequestStatus::kWorkerLost: return "WORKER_LOST";
  }
  return "?";
}

}  // namespace

int main() {
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;  // 2 * V + F with V = 5, F = 2
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox kick(101);
  for (nn::Param* p : model.params()) {
    if (p->name.find("head") != std::string::npos ||
        p->name.find("adaln") != std::string::npos) {
      kick.fill_normal(p->value, 7, 0);
      scale_(p->value, 0.1f);
    }
  }

  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  core::ParallelEnsembleEngine engine(model, tf, sc, 0);

  // Knobs come from AERIS_SERVE_* when set (see README).
  serving::ServerOptions opts = serving::ServerOptions::from_env();
  opts.workers = 2;
  opts.batch = 8;
  opts.max_step_retries = 2;
  serving::ForecastServer server(engine, opts);

  Philox rng(9);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  const core::ForcingFn forcings = [](std::int64_t s) {
    Philox frng(10);
    Tensor f({16, 16, 2});
    frng.fill_normal(f, 2, static_cast<std::uint64_t>(s));
    return f;
  };
  const std::int64_t steps = 3, members = 4;

  std::vector<serving::ForecastResult> results(4);
  std::vector<std::thread> clients;

  // Client 0: a well-behaved ensemble request.
  clients.emplace_back([&] {
    serving::ForecastRequest req;
    req.init = init;
    req.forcings_at = forcings;
    req.members = members;
    req.steps = steps;
    req.seed = 42;
    results[0] = server.forecast(req);
  });

  // Client 1: a deadline far too tight for the rollout; asks for the
  // partial prefix instead of nothing.
  clients.emplace_back([&] {
    serving::ForecastRequest req;
    req.init = init;
    req.forcings_at = [&](std::int64_t s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      return forcings(s);
    };
    req.steps = 8;
    req.seed = 43;
    req.deadline_ms = 60.0;
    req.return_partial = true;
    results[1] = server.forecast(req);
  });

  // Client 2: the forcing store drops the first fetch (transient fault).
  clients.emplace_back([&] {
    auto dropped = std::make_shared<std::atomic<bool>>(false);
    serving::ForecastRequest req;
    req.init = init;
    req.forcings_at = [&, dropped](std::int64_t s) {
      if (!dropped->exchange(true)) {
        throw std::runtime_error("forcing store timeout");
      }
      return forcings(s);
    };
    req.steps = steps;
    req.seed = 44;
    results[2] = server.forecast(req);
  });

  // Client 3: corrupted forcings on every fetch — the member diverges,
  // the quarantine retry diverges again, and the error is typed.
  clients.emplace_back([&] {
    serving::ForecastRequest req;
    req.init = init;
    req.forcings_at = [&](std::int64_t s) {
      Tensor f = forcings(s);
      f.data()[0] = std::numeric_limits<float>::quiet_NaN();
      return f;
    };
    req.steps = steps;
    req.seed = 45;
    results[3] = server.forecast(req);
  });

  for (auto& t : clients) t.join();

  std::printf("== forecast service drill ==\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const serving::ForecastResult& r = results[i];
    std::printf(
        "client %zu: %-9s members=%lld queue=%.1fms total=%.1fms retries=%d"
        "%s%s\n",
        i, status_name(r.status), static_cast<long long>(r.members_served),
        r.queue_wait_ms, r.total_ms, r.transient_retries,
        r.degraded ? " degraded" : "",
        r.error_message.empty() ? "" : (" | " + r.error_message).c_str());
  }

  // The unstressed client is bitwise the serial reference forecast.
  core::DiffusionForecaster serial(model, tf, sc, 42);
  const auto ref = serial.ensemble_rollout(init, forcings, steps, members);
  bool bitwise = results[0].status == serving::RequestStatus::kOk;
  for (std::size_t m = 0; bitwise && m < ref.size(); ++m) {
    for (std::size_t s = 0; bitwise && s < ref[m].size(); ++s) {
      bitwise = std::memcmp(ref[m][s].data(),
                            results[0].trajectories[m][s].data(),
                            static_cast<std::size_t>(ref[m][s].numel()) *
                                sizeof(float)) == 0;
    }
  }
  std::printf("client 0 bitwise-identical to serial reference: %s\n",
              bitwise ? "yes" : "NO");

  const serving::ServerStats st = server.stats();
  std::printf(
      "stats: accepted=%lld completed=%lld deadline=%lld faulted=%lld "
      "quarantined=%lld failed_members=%lld packs=%lld member_steps=%lld\n",
      static_cast<long long>(st.accepted),
      static_cast<long long>(st.completed),
      static_cast<long long>(st.deadline_expired),
      static_cast<long long>(st.faulted),
      static_cast<long long>(st.quarantined_members),
      static_cast<long long>(st.failed_members),
      static_cast<long long>(st.packs),
      static_cast<long long>(st.member_steps));
  return bitwise ? 0 : 1;
}
