// Quickstart: the smallest end-to-end AERIS workflow.
//  1. generate a tiny synthetic reanalysis with the Earth-system model;
//  2. train a small pixel-level Swin diffusion transformer (TrigFlow);
//  3. sample a 5-day, 3-member ensemble forecast and score it.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/scores.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  // 1. A small world: 32x32 grid, ~5 months of daily samples.
  DomainConfig cfg;
  cfg.samples = 150;
  cfg.train_steps = 60;  // demonstration-sized; raise for real skill
  std::printf("generating synthetic reanalysis (%lld days)...\n",
              static_cast<long long>(cfg.samples));
  Domain d = build_domain(cfg);
  std::printf("dataset: %lld samples of %lld variables on %lldx%lld; "
              "residual sigma_d = %.3f\n",
              static_cast<long long>(d.ds.size()),
              static_cast<long long>(d.ds.vars()),
              static_cast<long long>(d.ds.height()),
              static_cast<long long>(d.ds.width()), d.cfg.trigflow.sigma_d);

  // 2. Train the diffusion model.
  std::printf("training AERIS-small (%lld steps)...\n",
              static_cast<long long>(cfg.train_steps));
  std::vector<float> curve;
  auto model = train_model(d, core::Objective::kTrigFlow, &curve);
  std::printf("loss: %.4f -> %.4f over %zu steps (%lld parameters)\n",
              curve.front(), curve.back(), curve.size(),
              static_cast<long long>(model->param_count()));

  // 3. Forecast.
  const std::int64_t t0 = d.ds.test_begin() + 1;
  const std::int64_t steps = 5, members = 3;
  std::printf("sampling a %lld-day, %lld-member ensemble from day %lld...\n",
              static_cast<long long>(steps), static_cast<long long>(members),
              static_cast<long long>(t0));
  auto ens = forecast_ensemble(*model, core::Objective::kTrigFlow, d, t0,
                               steps, members);
  auto truth = truth_sequence(d, t0, steps);
  for (std::int64_t s = 0; s < steps; ++s) {
    std::vector<Tensor> mem;
    for (auto& m : ens) mem.push_back(m[s]);
    std::printf("  day %lld: Z500 ens-mean RMSE %.2f, CRPS %.2f, "
                "persistence RMSE %.2f\n",
                static_cast<long long>(s + 1),
                metrics::ensemble_mean_rmse(mem, truth[s], 5, d.lat_w),
                metrics::crps(mem, truth[s], 5, d.lat_w),
                metrics::lat_rmse(d.ds.state(t0), truth[s], 5, d.lat_w));
  }
  std::printf("done.\n");
  return 0;
}
