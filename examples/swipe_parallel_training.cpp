// SWiPe in action: train the same AERIS step single-rank and sharded over
// DP x PP x WP x SP (16 ranks), verify the losses and updated weights
// agree, and report the measured communication/memory/I-O footprint —
// the §V-A claims at executable scale.
#include <cmath>
#include <cstdio>

#include "aeris/swipe/engine.hpp"

using namespace aeris;
using namespace aeris::swipe;

int main() {
  core::ModelConfig m;
  m.h = 16;
  m.w = 16;
  m.out_channels = 4;
  m.in_channels = 2 * 4 + 1;
  m.dim = 32;
  m.depth = 2;
  m.heads = 4;
  m.ffn_hidden = 64;
  m.win_h = 4;
  m.win_w = 4;
  m.cond_dim = 32;
  m.time_features = 8;

  core::TrainerConfig tc;
  tc.objective = core::Objective::kTrigFlow;
  tc.schedule.peak = 1e-3f;
  tc.schedule.warmup = 1;
  tc.seed = 3;

  auto data = [&](std::int64_t idx) {
    Philox rng(77);
    core::TrainExample ex;
    ex.prev = Tensor({m.h, m.w, m.out_channels});
    rng.fill_normal(ex.prev, 1, static_cast<std::uint64_t>(idx));
    ex.target = Tensor({m.h, m.w, m.out_channels});
    for (std::int64_t r = 0; r < m.h; ++r) {
      for (std::int64_t c = 0; c < m.w; ++c) {
        for (std::int64_t v = 0; v < m.out_channels; ++v) {
          ex.target.at3(r, c, v) =
              ex.prev.at3(r, (c + m.w - 1) % m.w, v) + 0.05f;
        }
      }
    }
    ex.forcings = Tensor({m.h, m.w, 1}, 0.25f);
    return ex;
  };

  // --- single-rank reference ---
  core::AerisModel ref(m, tc.seed);
  core::Trainer trainer(ref, tc);
  const int microbatches = 2, dp = 1;
  std::vector<core::TrainExample> batch;
  for (int i = 0; i < dp * microbatches; ++i) batch.push_back(data(i));
  const float ref_loss = trainer.train_step(batch);
  std::printf("single-rank loss:   %.6f\n", ref_loss);

  // --- SWiPe: DP=1 x PP=4 x WP=2x2 x SP=2 -> 32 ranks ---
  EngineConfig ec;
  ec.model = m;
  ec.grid = SwipeGrid{dp, static_cast<int>(m.depth) + 2, 2, 2, 2};
  ec.train = tc;
  ec.microbatches = microbatches;
  World world(ec.grid.world_size());
  std::printf("SWiPe grid: DP=%d PP=%d WP=%dx%d SP=%d -> %d ranks\n",
              ec.grid.dp, ec.grid.pp, ec.grid.wp_a, ec.grid.wp_b, ec.grid.sp,
              world.size());

  std::vector<float> losses(static_cast<std::size_t>(world.size()));
  std::vector<SwipeEngine::Stats> stats(
      static_cast<std::size_t>(world.size()));
  world.run([&](int rank) {
    SwipeEngine engine(world, ec, rank);
    losses[static_cast<std::size_t>(rank)] =
        engine.train_step(data, 0);
    stats[static_cast<std::size_t>(rank)] = engine.stats();
  });
  std::printf("distributed loss:   %.6f (all %d ranks agree)\n", losses[0],
              world.size());
  std::printf("loss difference:    %.2e\n",
              std::fabs(losses[0] - ref_loss));

  const int block_rank = rank_of(ec.grid, {0, 1, 0, 0});
  const int input_rank = rank_of(ec.grid, {0, 0, 0, 0});
  std::printf("\nmeasured footprint (one step):\n");
  std::printf("  p2p bytes, block rank:       %lld\n",
              static_cast<long long>(world.rank_bytes(block_rank, Traffic::kP2P)));
  std::printf("  alltoall bytes, block rank:  %lld\n",
              static_cast<long long>(
                  world.rank_bytes(block_rank, Traffic::kAllToAll)));
  std::printf("  allreduce bytes, total:      %lld\n",
              static_cast<long long>(world.bytes(Traffic::kAllReduce)));
  std::printf("  activation floats / rank:    %lld (1/%d of the image)\n",
              static_cast<long long>(
                  stats[static_cast<std::size_t>(block_rank)].activation_floats),
              ec.grid.wp() * ec.grid.sp);
  std::printf("  input-stage I/O values:      %lld per rank\n",
              static_cast<long long>(
                  stats[static_cast<std::size_t>(input_rank)].io_values));
  return losses[0] == losses[0] ? 0 : 1;
}
