// Dataset-generation tool: runs the coupled Earth-system model and writes
// a sliceable training dataset to disk — the synthetic stand-in for
// downloading ERA5 from WeatherBench 2 (§VI-B).
//
//   ./build/examples/make_reanalysis <out.bin> [days=200] [grid=32] [seed=17]
#include <cstdio>
#include <cstdlib>

#include "aeris/data/generator.hpp"

using namespace aeris;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <out.bin> [days=200] [grid=32] [seed=17]\n",
                argv[0]);
    return 1;
  }
  physics::ReanalysisConfig cfg;
  cfg.samples = argc > 2 ? std::atoll(argv[2]) : 200;
  const std::int64_t grid = argc > 3 ? std::atoll(argv[3]) : 32;
  cfg.params.qg.h = grid;
  cfg.params.qg.w = grid;
  cfg.params.qg.ly = 2.0 * M_PI;
  cfg.params.qg.lx = 2.0 * M_PI;
  cfg.params.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 17;
  cfg.spin_up_steps = 6000;
  cfg.interval_hours = 24.0;

  std::printf("spinning up the Earth system (%lld steps) and recording "
              "%lld daily samples on a %lldx%lld grid...\n",
              static_cast<long long>(cfg.spin_up_steps),
              static_cast<long long>(cfg.samples),
              static_cast<long long>(grid), static_cast<long long>(grid));
  data::WeatherDataset ds = data::make_synthetic_era5(cfg);
  ds.save(argv[1]);
  std::printf("wrote %s: %lld samples, %lld variables", argv[1],
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.vars()));
  std::printf(" (normalization: ");
  for (std::int64_t v = 0; v < ds.vars(); ++v) {
    std::printf("%s mu=%.1f sd=%.2f%s", ds.var_names()[static_cast<std::size_t>(v)].c_str(),
                ds.normalization().mean[static_cast<std::size_t>(v)],
                ds.normalization().std[static_cast<std::size_t>(v)],
                v + 1 < ds.vars() ? ", " : ")\n");
  }
  return 0;
}
