// Medium-range ensemble forecasting (the paper's Fig. 1a/1c workload):
// train AERIS and the deterministic twin, launch an ensemble from a test
// date, and compare probabilistic scores, spread and spectral sharpness
// against the deterministic forecast — the motivation for diffusion in
// §IV-A. Uses the shared bench cache when present.
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/scores.hpp"
#include "aeris/metrics/spectra.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  DomainConfig cfg;
  cfg.samples = 220;
  cfg.train_steps = 120;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  auto diffusion = train_or_load_model(d, core::Objective::kTrigFlow,
                                       "aeris_cache");
  auto deterministic = train_or_load_model(d, core::Objective::kDeterministic,
                                           "aeris_cache");

  const std::int64_t t0 = d.ds.test_begin() + 1;
  const std::int64_t steps = 7, members = 4;
  // ParallelEnsembleEngine under the hood: members stacked two at a time
  // through the batch dim, chunks spread over two threads sharing the one
  // read-only model. Results are bitwise-identical to the serial engine.
  core::EnsembleOptions opts;
  opts.batch = 2;
  opts.threads = 2;
  auto ens = forecast_ensemble(*diffusion, core::Objective::kTrigFlow, d, t0,
                               steps, members, opts);
  auto det = forecast_deterministic(*deterministic, d, t0, steps);
  auto truth = truth_sequence(d, t0, steps);

  std::printf("== %lld-member ensemble vs deterministic (T850) ==\n",
              static_cast<long long>(members));
  std::printf("%-5s %10s %10s %10s %10s %10s\n", "day", "ensRMSE", "detRMSE",
              "CRPS", "spread", "SSR");
  for (std::int64_t s = 0; s < steps; ++s) {
    std::vector<Tensor> mem;
    for (auto& m : ens) mem.push_back(m[s]);
    std::printf("%-5lld %10.3f %10.3f %10.3f %10.3f %10.2f\n",
                static_cast<long long>(s + 1),
                metrics::ensemble_mean_rmse(mem, truth[s], 6, d.lat_w),
                metrics::lat_rmse(det[s], truth[s], 6, d.lat_w),
                metrics::crps(mem, truth[s], 6, d.lat_w),
                metrics::ensemble_spread(mem, 6, d.lat_w),
                metrics::spread_skill_ratio(mem, truth[s], 6, d.lat_w));
  }
  std::printf("\nsharpness at day %lld (small-scale Z500 power vs truth):\n",
              static_cast<long long>(steps));
  std::printf("  diffusion member %.2f vs deterministic %.2f\n",
              metrics::small_scale_power_ratio(ens[0][steps - 1],
                                               truth[steps - 1], 5),
              metrics::small_scale_power_ratio(det[steps - 1],
                                               truth[steps - 1], 5));
  return 0;
}
