// Fault-tolerant SWiPe training: run the AERIS step under an injected
// rank-kill, catch the failure on every rank, re-form the world, restore
// from the last committed checkpoint, and finish with a loss trajectory
// bitwise identical to an uninterrupted run. This is the recovery story a
// 10k-node training campaign needs, at executable scale.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "aeris/swipe/engine.hpp"
#include "aeris/swipe/fault.hpp"

using namespace aeris;
using namespace aeris::swipe;

namespace {

EngineConfig make_config() {
  core::ModelConfig m;
  m.h = 16;
  m.w = 16;
  m.out_channels = 4;
  m.in_channels = 2 * 4 + 1;
  m.dim = 32;
  m.depth = 2;
  m.heads = 4;
  m.ffn_hidden = 64;
  m.win_h = 4;
  m.win_w = 4;
  m.cond_dim = 32;
  m.time_features = 8;

  EngineConfig ec;
  ec.model = m;
  ec.grid = SwipeGrid{/*dp=*/2, /*pp=*/static_cast<int>(m.depth) + 2,
                      /*wp_a=*/1, /*wp_b=*/1, /*sp=*/1};
  ec.train.objective = core::Objective::kTrigFlow;
  ec.train.schedule.peak = 1e-3f;
  ec.train.schedule.warmup = 1;
  ec.train.seed = 3;
  ec.microbatches = 2;
  return ec;
}

core::TrainExample example_for(const core::ModelConfig& m, std::int64_t idx) {
  Philox rng(77);
  core::TrainExample ex;
  ex.prev = Tensor({m.h, m.w, m.out_channels});
  rng.fill_normal(ex.prev, 1, static_cast<std::uint64_t>(idx));
  ex.target = Tensor({m.h, m.w, m.out_channels});
  for (std::int64_t r = 0; r < m.h; ++r) {
    for (std::int64_t c = 0; c < m.w; ++c) {
      for (std::int64_t v = 0; v < m.out_channels; ++v) {
        ex.target.at3(r, c, v) = ex.prev.at3(r, (c + m.w - 1) % m.w, v) + 0.05f;
      }
    }
  }
  ex.forcings = Tensor({m.h, m.w, 1}, 0.25f);
  return ex;
}

/// Trains under failures: every completed step writes per-rank checkpoints
/// into a step directory, and a directory only counts as *committed* once
/// the collective step that produced it returned on every rank (a kill
/// mid-step can leave ranks straddling two steps — such a directory is
/// never restored from). On PeerFailedError the trainer reports the dead
/// rank, re-forms the world, restores from the last committed checkpoint,
/// and resumes.
class ResilientTrainer {
 public:
  ResilientTrainer(EngineConfig cfg, std::string ckpt_root, DataFn data)
      : cfg_(std::move(cfg)),
        root_(std::move(ckpt_root)),
        data_(std::move(data)) {}

  /// Runs `total_steps` steps, surviving injected faults. `plan` (may be
  /// null) is armed on each freshly formed world. Returns the per-step
  /// losses.
  std::vector<float> train(int total_steps,
                           std::shared_ptr<const FaultPlan> plan) {
    const int batch = cfg_.grid.dp * cfg_.microbatches;
    std::vector<float> losses(static_cast<std::size_t>(total_steps), 0.0f);
    int next_step = 0;     // first step the next world run should execute
    int committed = -1;    // last step whose checkpoint dir is complete
    int incarnation = 0;

    while (next_step < total_steps) {
      World world(cfg_.grid.world_size());
      world.set_fault_plan(plan);
      const int resume_from = committed;
      const int start_step = next_step;
      std::vector<int> done(static_cast<std::size_t>(world.size()), -1);
      try {
        world.run([&](int rank) {
          SwipeEngine engine(world, cfg_, rank);
          std::int64_t images = static_cast<std::int64_t>(start_step) * batch;
          if (resume_from >= 0) {
            images = engine.load_checkpoint(step_dir(resume_from));
          }
          for (int s = start_step; s < total_steps; ++s) {
            const float loss = engine.train_step(data_, images);
            images += batch;
            engine.save_checkpoint(step_dir(s), images);
            if (rank == 0) losses[static_cast<std::size_t>(s)] = loss;
            done[static_cast<std::size_t>(rank)] = s;
          }
        });
        // Clean completion: everything up to the last step is committed.
        committed = total_steps - 1;
        next_step = total_steps;
      } catch (const PeerFailedError& e) {
        // Commit only steps EVERY rank finished; later dirs may be torn.
        int all_done = total_steps;
        for (const int d : done) all_done = std::min(all_done, d);
        committed = std::max(committed, all_done);
        next_step = committed + 1;
        std::printf(
            "[resilient] incarnation %d: rank %d failed (%s)\n"
            "[resilient]   %zu rank failure(s) recorded; last committed "
            "step %d -> re-forming world\n",
            incarnation, e.failed_rank(), e.what(), world.failures().size(),
            committed);
        plan = nullptr;  // the injected fault fired; next world is healthy
        ++incarnation;
      }
    }
    return losses;
  }

 private:
  std::string step_dir(int step) const {
    return root_ + "/step" + std::to_string(step);
  }

  EngineConfig cfg_;
  std::string root_;
  DataFn data_;
};

}  // namespace

int main() {
  const EngineConfig cfg = make_config();
  const int batch = cfg.grid.dp * cfg.microbatches;
  const int steps = 5;
  const DataFn data = [&](std::int64_t idx) {
    return example_for(cfg.model, idx);
  };

  // --- ground truth: the same schedule with no faults ---
  std::vector<float> truth(static_cast<std::size_t>(steps));
  {
    World world(cfg.grid.world_size());
    world.run([&](int rank) {
      SwipeEngine engine(world, cfg, rank);
      for (int s = 0; s < steps; ++s) {
        const float loss =
            engine.train_step(data, static_cast<std::int64_t>(s) * batch);
        if (rank == 0) truth[static_cast<std::size_t>(s)] = loss;
      }
    });
  }
  std::printf("uninterrupted losses:");
  for (const float l : truth) std::printf(" %.6f", l);
  std::printf("\n");

  // --- resilient run: rank 5 is killed partway through step 2 (its 30th
  // send lands mid-collective there; steps 0-1 are committed on disk) ---
  const std::string root =
      (std::filesystem::temp_directory_path() / "aeris_resilient_ckpt")
          .string();
  std::filesystem::remove_all(root);
  auto plan = std::make_shared<FaultPlan>();
  plan->add(FaultEvent{FaultKind::kKillRank, /*rank=*/5,
                       /*nth_send=*/30});
  ResilientTrainer trainer(cfg, root, data);
  const std::vector<float> resumed = trainer.train(steps, plan);
  std::printf("resilient losses:   ");
  for (const float l : resumed) std::printf(" %.6f", l);
  std::printf("\n");

  // --- the claim: recovery is bitwise invisible in the trajectory ---
  bool bitwise = true;
  for (int s = 0; s < steps; ++s) {
    if (std::memcmp(&truth[static_cast<std::size_t>(s)],
                    &resumed[static_cast<std::size_t>(s)],
                    sizeof(float)) != 0) {
      std::printf("step %d diverged: %.9g vs %.9g\n", s,
                  truth[static_cast<std::size_t>(s)],
                  resumed[static_cast<std::size_t>(s)]);
      bitwise = false;
    }
  }
  std::filesystem::remove_all(root);
  if (!bitwise) {
    std::printf("FAILED: recovered trajectory diverged\n");
    return 1;
  }
  std::printf("recovered trajectory is bitwise identical "
              "(kill -> catch -> re-form -> restore -> resume)\n");
  return 0;
}
