file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cyclone.dir/fig6_cyclone.cpp.o"
  "CMakeFiles/bench_fig6_cyclone.dir/fig6_cyclone.cpp.o.d"
  "bench_fig6_cyclone"
  "bench_fig6_cyclone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cyclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
