# Empty dependencies file for bench_fig6_cyclone.
# This may be replaced when dependencies are built.
