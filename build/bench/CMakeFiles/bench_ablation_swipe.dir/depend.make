# Empty dependencies file for bench_ablation_swipe.
# This may be replaced when dependencies are built.
