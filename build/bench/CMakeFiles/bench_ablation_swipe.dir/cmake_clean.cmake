file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_swipe.dir/ablation_swipe.cpp.o"
  "CMakeFiles/bench_ablation_swipe.dir/ablation_swipe.cpp.o.d"
  "bench_ablation_swipe"
  "bench_ablation_swipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_swipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
