# Empty dependencies file for bench_fig7_seasonal.
# This may be replaced when dependencies are built.
