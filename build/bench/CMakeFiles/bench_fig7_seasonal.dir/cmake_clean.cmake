file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_seasonal.dir/fig7_seasonal.cpp.o"
  "CMakeFiles/bench_fig7_seasonal.dir/fig7_seasonal.cpp.o.d"
  "bench_fig7_seasonal"
  "bench_fig7_seasonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
