# Empty compiler generated dependencies file for bench_fig5_medium_range.
# This may be replaced when dependencies are built.
