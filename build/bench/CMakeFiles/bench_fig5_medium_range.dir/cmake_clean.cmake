file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_medium_range.dir/fig5_medium_range.cpp.o"
  "CMakeFiles/bench_fig5_medium_range.dir/fig5_medium_range.cpp.o.d"
  "bench_fig5_medium_range"
  "bench_fig5_medium_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_medium_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
