
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/experiments/test_domain.cpp" "tests/CMakeFiles/test_experiments.dir/experiments/test_domain.cpp.o" "gcc" "tests/CMakeFiles/test_experiments.dir/experiments/test_domain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/aeris_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aeris_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aeris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aeris_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/aeris_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
