file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_adaln.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_adaln.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_attention.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_attention.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_embedding.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_embedding.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_linear.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_linear.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_rmsnorm.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_rmsnorm.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_rope.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_rope.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_swiglu.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_swiglu.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
