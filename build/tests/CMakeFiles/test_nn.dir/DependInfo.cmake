
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_adaln.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_adaln.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_adaln.cpp.o.d"
  "/root/repo/tests/nn/test_attention.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_attention.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_attention.cpp.o.d"
  "/root/repo/tests/nn/test_embedding.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_embedding.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_embedding.cpp.o.d"
  "/root/repo/tests/nn/test_linear.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_linear.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_linear.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_rmsnorm.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_rmsnorm.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_rmsnorm.cpp.o.d"
  "/root/repo/tests/nn/test_rope.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_rope.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_rope.cpp.o.d"
  "/root/repo/tests/nn/test_swiglu.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_swiglu.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_swiglu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
