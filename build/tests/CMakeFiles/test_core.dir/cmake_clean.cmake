file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_forecaster.cpp.o"
  "CMakeFiles/test_core.dir/core/test_forecaster.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_loss_weights.cpp.o"
  "CMakeFiles/test_core.dir/core/test_loss_weights.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mixed_precision.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mixed_precision.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_shapes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_shapes.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sampler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sampler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_swin_block.cpp.o"
  "CMakeFiles/test_core.dir/core/test_swin_block.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trainer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trainer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trigflow.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trigflow.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_window.cpp.o"
  "CMakeFiles/test_core.dir/core/test_window.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
