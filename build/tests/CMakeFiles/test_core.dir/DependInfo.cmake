
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_forecaster.cpp" "tests/CMakeFiles/test_core.dir/core/test_forecaster.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_forecaster.cpp.o.d"
  "/root/repo/tests/core/test_loss_weights.cpp" "tests/CMakeFiles/test_core.dir/core/test_loss_weights.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_loss_weights.cpp.o.d"
  "/root/repo/tests/core/test_mixed_precision.cpp" "tests/CMakeFiles/test_core.dir/core/test_mixed_precision.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mixed_precision.cpp.o.d"
  "/root/repo/tests/core/test_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "/root/repo/tests/core/test_model_shapes.cpp" "tests/CMakeFiles/test_core.dir/core/test_model_shapes.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model_shapes.cpp.o.d"
  "/root/repo/tests/core/test_sampler.cpp" "tests/CMakeFiles/test_core.dir/core/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sampler.cpp.o.d"
  "/root/repo/tests/core/test_swin_block.cpp" "tests/CMakeFiles/test_core.dir/core/test_swin_block.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_swin_block.cpp.o.d"
  "/root/repo/tests/core/test_trainer.cpp" "tests/CMakeFiles/test_core.dir/core/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trainer.cpp.o.d"
  "/root/repo/tests/core/test_trigflow.cpp" "tests/CMakeFiles/test_core.dir/core/test_trigflow.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trigflow.cpp.o.d"
  "/root/repo/tests/core/test_window.cpp" "tests/CMakeFiles/test_core.dir/core/test_window.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aeris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
