
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/physics/test_earth_system.cpp" "tests/CMakeFiles/test_physics.dir/physics/test_earth_system.cpp.o" "gcc" "tests/CMakeFiles/test_physics.dir/physics/test_earth_system.cpp.o.d"
  "/root/repo/tests/physics/test_fft.cpp" "tests/CMakeFiles/test_physics.dir/physics/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_physics.dir/physics/test_fft.cpp.o.d"
  "/root/repo/tests/physics/test_qg.cpp" "tests/CMakeFiles/test_physics.dir/physics/test_qg.cpp.o" "gcc" "tests/CMakeFiles/test_physics.dir/physics/test_qg.cpp.o.d"
  "/root/repo/tests/physics/test_spectral.cpp" "tests/CMakeFiles/test_physics.dir/physics/test_spectral.cpp.o" "gcc" "tests/CMakeFiles/test_physics.dir/physics/test_spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/aeris_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
