# Empty compiler generated dependencies file for test_swipe.
# This may be replaced when dependencies are built.
