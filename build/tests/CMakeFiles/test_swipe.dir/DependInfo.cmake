
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/swipe/test_comm.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_comm.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_comm.cpp.o.d"
  "/root/repo/tests/swipe/test_engine.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_engine.cpp.o.d"
  "/root/repo/tests/swipe/test_pipeline.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_pipeline.cpp.o.d"
  "/root/repo/tests/swipe/test_topology.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_topology.cpp.o.d"
  "/root/repo/tests/swipe/test_ulysses.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_ulysses.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_ulysses.cpp.o.d"
  "/root/repo/tests/swipe/test_window_layout.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_window_layout.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_window_layout.cpp.o.d"
  "/root/repo/tests/swipe/test_zero1.cpp" "tests/CMakeFiles/test_swipe.dir/swipe/test_zero1.cpp.o" "gcc" "tests/CMakeFiles/test_swipe.dir/swipe/test_zero1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swipe/CMakeFiles/aeris_swipe.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aeris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
