file(REMOVE_RECURSE
  "CMakeFiles/test_swipe.dir/swipe/test_comm.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_comm.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_engine.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_engine.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_pipeline.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_pipeline.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_topology.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_topology.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_ulysses.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_ulysses.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_window_layout.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_window_layout.cpp.o.d"
  "CMakeFiles/test_swipe.dir/swipe/test_zero1.cpp.o"
  "CMakeFiles/test_swipe.dir/swipe/test_zero1.cpp.o.d"
  "test_swipe"
  "test_swipe.pdb"
  "test_swipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
