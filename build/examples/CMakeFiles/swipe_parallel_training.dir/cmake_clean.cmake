file(REMOVE_RECURSE
  "CMakeFiles/swipe_parallel_training.dir/swipe_parallel_training.cpp.o"
  "CMakeFiles/swipe_parallel_training.dir/swipe_parallel_training.cpp.o.d"
  "swipe_parallel_training"
  "swipe_parallel_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swipe_parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
