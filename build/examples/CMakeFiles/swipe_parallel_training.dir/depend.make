# Empty dependencies file for swipe_parallel_training.
# This may be replaced when dependencies are built.
