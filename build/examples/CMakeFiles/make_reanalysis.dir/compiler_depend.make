# Empty compiler generated dependencies file for make_reanalysis.
# This may be replaced when dependencies are built.
