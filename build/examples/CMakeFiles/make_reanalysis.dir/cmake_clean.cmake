file(REMOVE_RECURSE
  "CMakeFiles/make_reanalysis.dir/make_reanalysis.cpp.o"
  "CMakeFiles/make_reanalysis.dir/make_reanalysis.cpp.o.d"
  "make_reanalysis"
  "make_reanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_reanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
