# Empty compiler generated dependencies file for seasonal_outlook.
# This may be replaced when dependencies are built.
