file(REMOVE_RECURSE
  "CMakeFiles/seasonal_outlook.dir/seasonal_outlook.cpp.o"
  "CMakeFiles/seasonal_outlook.dir/seasonal_outlook.cpp.o.d"
  "seasonal_outlook"
  "seasonal_outlook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seasonal_outlook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
