file(REMOVE_RECURSE
  "CMakeFiles/ensemble_forecast.dir/ensemble_forecast.cpp.o"
  "CMakeFiles/ensemble_forecast.dir/ensemble_forecast.cpp.o.d"
  "ensemble_forecast"
  "ensemble_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
