# Empty dependencies file for ensemble_forecast.
# This may be replaced when dependencies are built.
