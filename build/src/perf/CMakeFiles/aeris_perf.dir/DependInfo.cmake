
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/src/arch.cpp" "src/perf/CMakeFiles/aeris_perf.dir/src/arch.cpp.o" "gcc" "src/perf/CMakeFiles/aeris_perf.dir/src/arch.cpp.o.d"
  "/root/repo/src/perf/src/machine.cpp" "src/perf/CMakeFiles/aeris_perf.dir/src/machine.cpp.o" "gcc" "src/perf/CMakeFiles/aeris_perf.dir/src/machine.cpp.o.d"
  "/root/repo/src/perf/src/paper_configs.cpp" "src/perf/CMakeFiles/aeris_perf.dir/src/paper_configs.cpp.o" "gcc" "src/perf/CMakeFiles/aeris_perf.dir/src/paper_configs.cpp.o.d"
  "/root/repo/src/perf/src/perf_model.cpp" "src/perf/CMakeFiles/aeris_perf.dir/src/perf_model.cpp.o" "gcc" "src/perf/CMakeFiles/aeris_perf.dir/src/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swipe/CMakeFiles/aeris_swipe.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aeris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
