file(REMOVE_RECURSE
  "CMakeFiles/aeris_perf.dir/src/arch.cpp.o"
  "CMakeFiles/aeris_perf.dir/src/arch.cpp.o.d"
  "CMakeFiles/aeris_perf.dir/src/machine.cpp.o"
  "CMakeFiles/aeris_perf.dir/src/machine.cpp.o.d"
  "CMakeFiles/aeris_perf.dir/src/paper_configs.cpp.o"
  "CMakeFiles/aeris_perf.dir/src/paper_configs.cpp.o.d"
  "CMakeFiles/aeris_perf.dir/src/perf_model.cpp.o"
  "CMakeFiles/aeris_perf.dir/src/perf_model.cpp.o.d"
  "libaeris_perf.a"
  "libaeris_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
