# Empty compiler generated dependencies file for aeris_perf.
# This may be replaced when dependencies are built.
