file(REMOVE_RECURSE
  "libaeris_perf.a"
)
