file(REMOVE_RECURSE
  "CMakeFiles/aeris_nn.dir/src/adaln.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/adaln.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/attention.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/attention.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/embedding.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/embedding.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/linear.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/linear.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/optimizer.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/optimizer.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/param.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/param.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/rmsnorm.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/rmsnorm.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/rope.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/rope.cpp.o.d"
  "CMakeFiles/aeris_nn.dir/src/swiglu.cpp.o"
  "CMakeFiles/aeris_nn.dir/src/swiglu.cpp.o.d"
  "libaeris_nn.a"
  "libaeris_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
