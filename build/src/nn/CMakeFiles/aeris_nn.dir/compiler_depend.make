# Empty compiler generated dependencies file for aeris_nn.
# This may be replaced when dependencies are built.
