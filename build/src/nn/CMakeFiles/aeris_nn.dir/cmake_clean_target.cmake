file(REMOVE_RECURSE
  "libaeris_nn.a"
)
