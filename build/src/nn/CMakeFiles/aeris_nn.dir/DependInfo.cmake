
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/src/adaln.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/adaln.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/adaln.cpp.o.d"
  "/root/repo/src/nn/src/attention.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/attention.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/attention.cpp.o.d"
  "/root/repo/src/nn/src/embedding.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/embedding.cpp.o.d"
  "/root/repo/src/nn/src/linear.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/linear.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/linear.cpp.o.d"
  "/root/repo/src/nn/src/optimizer.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/optimizer.cpp.o.d"
  "/root/repo/src/nn/src/param.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/param.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/param.cpp.o.d"
  "/root/repo/src/nn/src/rmsnorm.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/rmsnorm.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/rmsnorm.cpp.o.d"
  "/root/repo/src/nn/src/rope.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/rope.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/rope.cpp.o.d"
  "/root/repo/src/nn/src/swiglu.cpp" "src/nn/CMakeFiles/aeris_nn.dir/src/swiglu.cpp.o" "gcc" "src/nn/CMakeFiles/aeris_nn.dir/src/swiglu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
