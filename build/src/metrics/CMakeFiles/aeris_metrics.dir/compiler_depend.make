# Empty compiler generated dependencies file for aeris_metrics.
# This may be replaced when dependencies are built.
