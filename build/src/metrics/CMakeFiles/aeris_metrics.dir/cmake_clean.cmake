file(REMOVE_RECURSE
  "CMakeFiles/aeris_metrics.dir/src/s2s.cpp.o"
  "CMakeFiles/aeris_metrics.dir/src/s2s.cpp.o.d"
  "CMakeFiles/aeris_metrics.dir/src/scores.cpp.o"
  "CMakeFiles/aeris_metrics.dir/src/scores.cpp.o.d"
  "CMakeFiles/aeris_metrics.dir/src/spectra.cpp.o"
  "CMakeFiles/aeris_metrics.dir/src/spectra.cpp.o.d"
  "CMakeFiles/aeris_metrics.dir/src/tracker.cpp.o"
  "CMakeFiles/aeris_metrics.dir/src/tracker.cpp.o.d"
  "libaeris_metrics.a"
  "libaeris_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
