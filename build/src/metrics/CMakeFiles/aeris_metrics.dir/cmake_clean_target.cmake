file(REMOVE_RECURSE
  "libaeris_metrics.a"
)
