
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/src/s2s.cpp" "src/metrics/CMakeFiles/aeris_metrics.dir/src/s2s.cpp.o" "gcc" "src/metrics/CMakeFiles/aeris_metrics.dir/src/s2s.cpp.o.d"
  "/root/repo/src/metrics/src/scores.cpp" "src/metrics/CMakeFiles/aeris_metrics.dir/src/scores.cpp.o" "gcc" "src/metrics/CMakeFiles/aeris_metrics.dir/src/scores.cpp.o.d"
  "/root/repo/src/metrics/src/spectra.cpp" "src/metrics/CMakeFiles/aeris_metrics.dir/src/spectra.cpp.o" "gcc" "src/metrics/CMakeFiles/aeris_metrics.dir/src/spectra.cpp.o.d"
  "/root/repo/src/metrics/src/tracker.cpp" "src/metrics/CMakeFiles/aeris_metrics.dir/src/tracker.cpp.o" "gcc" "src/metrics/CMakeFiles/aeris_metrics.dir/src/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/aeris_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
