# Empty compiler generated dependencies file for aeris_swipe.
# This may be replaced when dependencies are built.
