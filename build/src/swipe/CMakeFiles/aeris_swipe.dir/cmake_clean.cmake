file(REMOVE_RECURSE
  "CMakeFiles/aeris_swipe.dir/src/comm.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/comm.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/engine.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/engine.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/pipeline.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/topology.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/topology.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/ulysses.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/ulysses.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/window_layout.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/window_layout.cpp.o.d"
  "CMakeFiles/aeris_swipe.dir/src/zero1.cpp.o"
  "CMakeFiles/aeris_swipe.dir/src/zero1.cpp.o.d"
  "libaeris_swipe.a"
  "libaeris_swipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_swipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
