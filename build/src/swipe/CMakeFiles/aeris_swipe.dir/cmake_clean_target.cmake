file(REMOVE_RECURSE
  "libaeris_swipe.a"
)
