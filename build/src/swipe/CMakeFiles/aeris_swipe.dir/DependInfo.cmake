
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swipe/src/comm.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/comm.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/comm.cpp.o.d"
  "/root/repo/src/swipe/src/engine.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/engine.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/engine.cpp.o.d"
  "/root/repo/src/swipe/src/pipeline.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/pipeline.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/pipeline.cpp.o.d"
  "/root/repo/src/swipe/src/topology.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/topology.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/topology.cpp.o.d"
  "/root/repo/src/swipe/src/ulysses.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/ulysses.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/ulysses.cpp.o.d"
  "/root/repo/src/swipe/src/window_layout.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/window_layout.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/window_layout.cpp.o.d"
  "/root/repo/src/swipe/src/zero1.cpp" "src/swipe/CMakeFiles/aeris_swipe.dir/src/zero1.cpp.o" "gcc" "src/swipe/CMakeFiles/aeris_swipe.dir/src/zero1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aeris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
