# Empty dependencies file for aeris_experiments.
# This may be replaced when dependencies are built.
