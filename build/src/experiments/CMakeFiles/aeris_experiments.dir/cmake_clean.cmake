file(REMOVE_RECURSE
  "CMakeFiles/aeris_experiments.dir/src/domain.cpp.o"
  "CMakeFiles/aeris_experiments.dir/src/domain.cpp.o.d"
  "libaeris_experiments.a"
  "libaeris_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
