file(REMOVE_RECURSE
  "libaeris_experiments.a"
)
