
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/src/cyclone.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/cyclone.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/cyclone.cpp.o.d"
  "/root/repo/src/physics/src/earth_system.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/earth_system.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/earth_system.cpp.o.d"
  "/root/repo/src/physics/src/era5like.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/era5like.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/era5like.cpp.o.d"
  "/root/repo/src/physics/src/fft.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/fft.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/fft.cpp.o.d"
  "/root/repo/src/physics/src/ocean.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/ocean.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/ocean.cpp.o.d"
  "/root/repo/src/physics/src/qg.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/qg.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/qg.cpp.o.d"
  "/root/repo/src/physics/src/spectral.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/spectral.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/spectral.cpp.o.d"
  "/root/repo/src/physics/src/thermo.cpp" "src/physics/CMakeFiles/aeris_physics.dir/src/thermo.cpp.o" "gcc" "src/physics/CMakeFiles/aeris_physics.dir/src/thermo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
