# Empty compiler generated dependencies file for aeris_physics.
# This may be replaced when dependencies are built.
