file(REMOVE_RECURSE
  "libaeris_physics.a"
)
