file(REMOVE_RECURSE
  "CMakeFiles/aeris_physics.dir/src/cyclone.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/cyclone.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/earth_system.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/earth_system.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/era5like.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/era5like.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/fft.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/fft.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/ocean.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/ocean.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/qg.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/qg.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/spectral.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/spectral.cpp.o.d"
  "CMakeFiles/aeris_physics.dir/src/thermo.cpp.o"
  "CMakeFiles/aeris_physics.dir/src/thermo.cpp.o.d"
  "libaeris_physics.a"
  "libaeris_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
