file(REMOVE_RECURSE
  "CMakeFiles/aeris_data.dir/src/dataset.cpp.o"
  "CMakeFiles/aeris_data.dir/src/dataset.cpp.o.d"
  "CMakeFiles/aeris_data.dir/src/generator.cpp.o"
  "CMakeFiles/aeris_data.dir/src/generator.cpp.o.d"
  "libaeris_data.a"
  "libaeris_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
