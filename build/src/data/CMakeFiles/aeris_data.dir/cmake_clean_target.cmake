file(REMOVE_RECURSE
  "libaeris_data.a"
)
