# Empty compiler generated dependencies file for aeris_data.
# This may be replaced when dependencies are built.
