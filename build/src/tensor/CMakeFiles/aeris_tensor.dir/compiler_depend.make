# Empty compiler generated dependencies file for aeris_tensor.
# This may be replaced when dependencies are built.
