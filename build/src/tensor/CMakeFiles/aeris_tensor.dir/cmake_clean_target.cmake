file(REMOVE_RECURSE
  "libaeris_tensor.a"
)
