file(REMOVE_RECURSE
  "CMakeFiles/aeris_tensor.dir/src/gemm.cpp.o"
  "CMakeFiles/aeris_tensor.dir/src/gemm.cpp.o.d"
  "CMakeFiles/aeris_tensor.dir/src/ops.cpp.o"
  "CMakeFiles/aeris_tensor.dir/src/ops.cpp.o.d"
  "CMakeFiles/aeris_tensor.dir/src/rng.cpp.o"
  "CMakeFiles/aeris_tensor.dir/src/rng.cpp.o.d"
  "CMakeFiles/aeris_tensor.dir/src/tensor.cpp.o"
  "CMakeFiles/aeris_tensor.dir/src/tensor.cpp.o.d"
  "CMakeFiles/aeris_tensor.dir/src/thread_pool.cpp.o"
  "CMakeFiles/aeris_tensor.dir/src/thread_pool.cpp.o.d"
  "libaeris_tensor.a"
  "libaeris_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
