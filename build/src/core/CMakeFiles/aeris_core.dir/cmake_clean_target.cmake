file(REMOVE_RECURSE
  "libaeris_core.a"
)
