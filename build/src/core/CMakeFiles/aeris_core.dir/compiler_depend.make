# Empty compiler generated dependencies file for aeris_core.
# This may be replaced when dependencies are built.
