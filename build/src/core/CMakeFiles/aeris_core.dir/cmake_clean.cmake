file(REMOVE_RECURSE
  "CMakeFiles/aeris_core.dir/src/edm.cpp.o"
  "CMakeFiles/aeris_core.dir/src/edm.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/forecaster.cpp.o"
  "CMakeFiles/aeris_core.dir/src/forecaster.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/loss_weights.cpp.o"
  "CMakeFiles/aeris_core.dir/src/loss_weights.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/model.cpp.o"
  "CMakeFiles/aeris_core.dir/src/model.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/sampler.cpp.o"
  "CMakeFiles/aeris_core.dir/src/sampler.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/swin_block.cpp.o"
  "CMakeFiles/aeris_core.dir/src/swin_block.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/trainer.cpp.o"
  "CMakeFiles/aeris_core.dir/src/trainer.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/trigflow.cpp.o"
  "CMakeFiles/aeris_core.dir/src/trigflow.cpp.o.d"
  "CMakeFiles/aeris_core.dir/src/window.cpp.o"
  "CMakeFiles/aeris_core.dir/src/window.cpp.o.d"
  "libaeris_core.a"
  "libaeris_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
