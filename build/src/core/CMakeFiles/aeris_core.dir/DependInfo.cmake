
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/edm.cpp" "src/core/CMakeFiles/aeris_core.dir/src/edm.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/edm.cpp.o.d"
  "/root/repo/src/core/src/forecaster.cpp" "src/core/CMakeFiles/aeris_core.dir/src/forecaster.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/forecaster.cpp.o.d"
  "/root/repo/src/core/src/loss_weights.cpp" "src/core/CMakeFiles/aeris_core.dir/src/loss_weights.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/loss_weights.cpp.o.d"
  "/root/repo/src/core/src/model.cpp" "src/core/CMakeFiles/aeris_core.dir/src/model.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/model.cpp.o.d"
  "/root/repo/src/core/src/sampler.cpp" "src/core/CMakeFiles/aeris_core.dir/src/sampler.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/sampler.cpp.o.d"
  "/root/repo/src/core/src/swin_block.cpp" "src/core/CMakeFiles/aeris_core.dir/src/swin_block.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/swin_block.cpp.o.d"
  "/root/repo/src/core/src/trainer.cpp" "src/core/CMakeFiles/aeris_core.dir/src/trainer.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/trainer.cpp.o.d"
  "/root/repo/src/core/src/trigflow.cpp" "src/core/CMakeFiles/aeris_core.dir/src/trigflow.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/trigflow.cpp.o.d"
  "/root/repo/src/core/src/window.cpp" "src/core/CMakeFiles/aeris_core.dir/src/window.cpp.o" "gcc" "src/core/CMakeFiles/aeris_core.dir/src/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/aeris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aeris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
