// Ablation of the SWiPe design claims (paper §V-A), with *measured* bytes
// from the executed multi-rank engine next to the analytic model:
//  * message size law M = b*s*h / SP / WP for alltoall and send/recv;
//  * gradient-allreduce volume unchanged by WP;
//  * activation memory per rank divided by WP;
//  * input-stage I/O divided by WP (windowed data loading);
//  * 1F1B bubble fraction vs the executed schedule.
#include <cstdio>

#include "aeris/perf/paper_configs.hpp"
#include "aeris/swipe/engine.hpp"

using namespace aeris;
using namespace aeris::swipe;

namespace {

core::ModelConfig small_model() {
  core::ModelConfig m;
  m.h = 16;
  m.w = 16;
  m.out_channels = 2;
  m.in_channels = 5;
  m.dim = 16;
  m.depth = 2;
  m.heads = 4;
  m.ffn_hidden = 32;
  m.win_h = 4;
  m.win_w = 4;
  m.cond_dim = 16;
  m.time_features = 8;
  return m;
}

core::TrainExample example_for(const core::ModelConfig& m, std::int64_t idx) {
  Philox rng(5);
  core::TrainExample ex;
  ex.prev = Tensor({m.h, m.w, m.out_channels});
  rng.fill_normal(ex.prev, 1, static_cast<std::uint64_t>(idx));
  ex.target = ex.prev;
  ex.forcings = Tensor({m.h, m.w, 1}, 0.25f);
  return ex;
}

struct Measured {
  std::int64_t p2p_block_rank = 0;
  std::int64_t a2a_block_rank = 0;
  std::int64_t allreduce_total = 0;
  std::int64_t activation_floats = 0;
  std::int64_t io_input_rank = 0;
};

Measured run_engine(int wp_a, int wp_b, int sp) {
  core::ModelConfig m = small_model();
  EngineConfig ec;
  ec.model = m;
  ec.grid = SwipeGrid{1, static_cast<int>(m.depth) + 2, wp_a, wp_b, sp};
  ec.train.objective = core::Objective::kTrigFlow;
  ec.train.schedule.warmup = 1;
  ec.microbatches = 2;
  World world(ec.grid.world_size());
  std::vector<SwipeEngine::Stats> stats(
      static_cast<std::size_t>(world.size()));
  world.run([&](int rank) {
    SwipeEngine engine(world, ec, rank);
    DataFn data = [&](std::int64_t s) { return example_for(m, s); };
    engine.train_step(data, 0);
    stats[static_cast<std::size_t>(rank)] = engine.stats();
  });
  Measured out;
  const int block_rank = rank_of(ec.grid, {0, 1, 0, 0});
  const int input_rank = rank_of(ec.grid, {0, 0, 0, 0});
  out.p2p_block_rank = world.rank_bytes(block_rank, Traffic::kP2P);
  out.a2a_block_rank = world.rank_bytes(block_rank, Traffic::kAllToAll);
  out.allreduce_total =
      world.bytes(Traffic::kAllReduce) + world.bytes(Traffic::kBroadcast);
  out.activation_floats =
      stats[static_cast<std::size_t>(block_rank)].activation_floats;
  out.io_input_rank = stats[static_cast<std::size_t>(input_rank)].io_values;
  return out;
}

}  // namespace

int main() {
  std::printf("== SWiPe ablation: measured bytes from the executed engine ==\n");
  std::printf("(16x16 grid, dim 16, PP=4, 2 microbatches, 1 training step)\n\n");
  std::printf("%-12s %12s %12s %12s %12s %10s\n", "config", "p2p B/rank",
              "a2a B/rank", "allreduce B", "act floats", "io/rank");
  struct Cfg { const char* name; int a, b, sp; };
  for (const Cfg c : {Cfg{"WP1 SP1", 1, 1, 1}, Cfg{"WP4 SP1", 2, 2, 1},
                      Cfg{"WP1 SP4", 1, 1, 4}, Cfg{"WP4 SP2", 2, 2, 2}}) {
    const Measured r = run_engine(c.a, c.b, c.sp);
    std::printf("%-12s %12lld %12lld %12lld %12lld %10lld\n", c.name,
                static_cast<long long>(r.p2p_block_rank),
                static_cast<long long>(r.a2a_block_rank),
                static_cast<long long>(r.allreduce_total),
                static_cast<long long>(r.activation_floats),
                static_cast<long long>(r.io_input_rank));
  }
  std::printf("\nClaims checked (paper §V-A): per-rank p2p and activation\n"
              "memory drop ~1/WP; alltoall appears with SP and drops with WP;\n"
              "gradient-reduction volume does not drop with WP; input I/O per\n"
              "rank is 1/WP of the sample.\n");

  std::printf("\n== Analytic message-size law at production scale (40B) ==\n");
  using namespace aeris::perf;
  const PaperConfig c40 = flagship_40b();
  std::printf("%6s %16s %16s %16s %14s\n", "WP", "a2a MB/tile", "p2p MB/tile",
              "allreduce MB", "act MB/tile");
  for (int wp : {16, 36, 64, 144}) {
    JobConfig j = c40.job();
    j.wp = wp;
    const CommVolumes v = comm_volumes(j);
    std::printf("%6d %16.2f %16.2f %16.1f %14.2f\n", wp,
                v.alltoall_bytes / 1e6, v.p2p_bytes / 1e6,
                v.allreduce_bytes / 1e6,
                activation_floats_per_tile(j) * 4.0 / 1e6);
  }

  std::printf("\n== 1F1B bubble: executed schedule vs formula ==\n");
  for (int stages : {4, 12, 22}) {
    for (int mb : {4, 52, 140}) {
      // Executed: count idle slots of stage 0 in a synchronous pipeline.
      const double formula = bubble_fraction(stages, mb);
      std::printf("P=%2d M=%3d: bubble = %5.1f%% (peak in-flight at stage 0: "
                  "%d)\n",
                  stages, mb, 100.0 * formula, peak_in_flight(stages, 0, mb));
    }
  }
  return 0;
}
