// Reproduces paper Fig. 7: seasonal (90-day) forecast stability.
//  (a) daily Nino-3.4-analogue index of the ensemble vs truth;
//  (b) field stability: spatial-std ratio to truth climatology and
//      small-scale spectral power at days 30/60/90 (a stable rollout stays
//      near 1; collapsing/blurred rollouts drift — the failure mode the
//      paper reports for multistep solvers beyond two weeks);
//  (c) Hovmöller diagram of U850 in the tropical band: pattern correlation
//      with truth over the first 3 weeks and long-range phase speed.
#include <cmath>
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/s2s.hpp"
#include "aeris/metrics/scores.hpp"
#include "aeris/metrics/spectra.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  DomainConfig cfg;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  auto model = train_or_load_model(d, core::Objective::kTrigFlow,
                                   "aeris_cache");
  auto det_model = train_or_load_model(d, core::Objective::kDeterministic,
                                       "aeris_cache");

  const std::int64_t t0 = d.ds.test_begin() + 1;
  const std::int64_t steps =
      std::min<std::int64_t>(90, d.ds.size() - 2 - t0);
  const std::int64_t members = 3;
  std::printf("== Fig. 7: %lld-day rollout from day %lld, %lld members ==\n",
              static_cast<long long>(steps), static_cast<long long>(t0),
              static_cast<long long>(members));

  auto ens = forecast_ensemble(*model, core::Objective::kTrigFlow, d, t0,
                               steps, members);
  auto det = forecast_deterministic(*det_model, d, t0, steps);
  auto truth = truth_sequence(d, t0, steps);

  // (a) Nino index trace.
  const auto box = metrics::default_nino_box(cfg.grid, cfg.grid);
  std::printf("\n-- Fig. 7a: Nino-box SST index --\n");
  std::printf("%-6s %8s %8s %8s %8s\n", "day", "truth", "ens.mean", "min",
              "max");
  for (std::int64_t s = 4; s < steps; s += 10) {
    double mean = 0.0, lo = 1e9, hi = -1e9;
    for (auto& m : ens) {
      const double v = metrics::nino_index(m[s], box);
      mean += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    mean /= static_cast<double>(members);
    std::printf("%-6lld %8.2f %8.2f %8.2f %8.2f\n",
                static_cast<long long>(s + 1),
                metrics::nino_index(truth[s], box), mean, lo, hi);
  }
  // Correlation of daily index over the rollout.
  {
    double st = 0, sm = 0, stt = 0, smm = 0, stm = 0;
    for (std::int64_t s = 0; s < steps; ++s) {
      double mean = 0.0;
      for (auto& m : ens) mean += metrics::nino_index(m[s], box);
      mean /= static_cast<double>(members);
      const double tr = metrics::nino_index(truth[s], box);
      st += tr; sm += mean; stt += tr * tr; smm += mean * mean; stm += tr * mean;
    }
    const double n = static_cast<double>(steps);
    const double corr = (stm - st * sm / n) /
                        std::sqrt((stt - st * st / n) * (smm - sm * sm / n));
    std::printf("ens.mean / truth correlation over %lld days: %.2f\n",
                static_cast<long long>(steps), corr);
  }

  // (b) Field stability.
  std::printf("\n-- Fig. 7b: field stability (ratios to truth; 1 = stable) --\n");
  std::printf("%-6s | %18s | %18s | %18s\n", "day", "std(SST)", "std(Q700)",
              "smallscale(Z500)");
  std::printf("%-6s | %8s %9s | %8s %9s | %8s %9s\n", "", "AERIS", "determ.",
              "AERIS", "determ.", "AERIS", "determ.");
  for (std::int64_t s : {29L, 59L, steps - 1}) {
    if (s >= steps) continue;
    std::printf("%-6lld | %8.2f %9.2f | %8.2f %9.2f | %8.2f %9.2f\n",
                static_cast<long long>(s + 1),
                metrics::field_std_ratio(ens[0][s], truth[s], 4),
                metrics::field_std_ratio(det[s], truth[s], 4),
                metrics::field_std_ratio(ens[0][s], truth[s], 7),
                metrics::field_std_ratio(det[s], truth[s], 7),
                metrics::small_scale_power_ratio(ens[0][s], truth[s], 5),
                metrics::small_scale_power_ratio(det[s], truth[s], 5));
  }
  bool finite = true;
  for (auto& m : ens) {
    for (float x : m.back().flat()) finite = finite && std::isfinite(x);
  }
  std::printf("all member fields finite at day %lld: %s\n",
              static_cast<long long>(steps), finite ? "yes" : "NO");

  // (c) Hovmöller of U850 in the tropical band.
  const std::int64_t r0 = cfg.grid * 2 / 5, r1 = cfg.grid * 3 / 5;
  const Tensor hov_truth = metrics::hovmoller(truth, 8, r0, r1);
  const Tensor hov_ml = metrics::hovmoller(ens[0], 8, r0, r1);
  const std::int64_t early = std::min<std::int64_t>(21, steps);
  Tensor hov_truth_3w({early, cfg.grid}), hov_ml_3w({early, cfg.grid});
  for (std::int64_t i = 0; i < early * cfg.grid; ++i) {
    hov_truth_3w[i] = hov_truth[i];
    hov_ml_3w[i] = hov_ml[i];
  }
  std::printf("\n-- Fig. 7c: U850 Hovmöller (rows %lld-%lld) --\n",
              static_cast<long long>(r0), static_cast<long long>(r1));
  std::printf("pattern correlation, first 3 weeks: %.2f\n",
              metrics::hovmoller_correlation(hov_ml_3w, hov_truth_3w));
  std::printf("pattern correlation, full %lld days: %.2f (decorrelates, but "
              "variability persists)\n",
              static_cast<long long>(steps),
              metrics::hovmoller_correlation(hov_ml, hov_truth));
  std::printf("zonal phase speed (cells/day): truth %.1f, AERIS %.1f\n",
              metrics::hovmoller_phase_speed(hov_truth),
              metrics::hovmoller_phase_speed(hov_ml));
  return 0;
}
