// Reproduces paper Table III: sustained/peak training throughput per
// configuration from the analytic performance model (the paper's own
// measurement methodology is FLOP counting + timing, §VI-D), with the
// paper's reported values side by side. Also prints the Table I machine
// constants the model uses.
#include <cstdio>

#include "aeris/perf/paper_configs.hpp"

int main() {
  using namespace aeris::perf;
  const Machine a = aurora(), l = lumi();
  std::printf("== Table I: machine configurations used by the model ==\n");
  std::printf("%-24s %10s %10s\n", "", "Aurora", "LUMI");
  std::printf("%-24s %10d %10d\n", "GPU tiles / node", a.tiles_per_node,
              l.tiles_per_node);
  std::printf("%-24s %10.1f %10.1f\n", "BF16 peak / tile (TF)",
              a.peak_tflops_tile, l.peak_tflops_tile);
  std::printf("%-24s %10.0f %10.0f\n", "Scale-up BW (GB/s)", a.scale_up_gbs,
              l.scale_up_gbs);
  std::printf("%-24s %10.0f %10.0f\n", "Scale-out BW (GB/s)", a.scale_out_gbs,
              l.scale_out_gbs);
  std::printf("%-24s %10d %10d\n", "NICs / node", a.nics_per_node,
              l.nics_per_node);

  std::printf("\n== Table III: sustained & peak training throughput ==\n");
  std::printf("%-7s %6s %3s %5s | %6s %7s %7s %7s | %6s %6s %6s %6s\n",
              "Config", "Nodes", "DP", "GBS", "img/s", "TF/T", "MFU%",
              "EF(S)", "pTF/T", "pMFU", "pEF(S)", "pEF(P)");
  for (const PaperConfig& c : paper_configs()) {
    const Throughput t = evaluate(c.job());
    std::printf(
        "%-7s %6d %3d %5d | %6.1f %7.1f %7.1f %7.2f | %6.1f %6.1f %6.2f %6.2f\n",
        c.name.c_str(), c.nodes, c.dp, c.gbs, t.images_per_s,
        t.tflops_per_tile, t.mfu * 100.0, t.sustained_eflops,
        c.paper_tf_per_tile, c.paper_mfu_pct, c.paper_ef_sustained,
        c.paper_ef_peak);
  }

  const Throughput t40 = evaluate(flagship_40b().job());
  std::printf("\nFlagship 40B step-time breakdown (s): compute %.1f, "
              "alltoall %.1f, p2p %.1f, bubble %.1f, grad-sync %.1f, "
              "optimizer %.1f\n",
              t40.step.compute_s, t40.step.alltoall_s, t40.step.p2p_s,
              t40.step.bubble_s, t40.step.grad_sync_s, t40.step.optimizer_s);
  std::printf("Peak EF (pipeline-only) %.2f vs sustained %.2f; 3M samples at "
              "%.1f img/s = %.1f hours (paper: ~15h at 50 img/s).\n",
              t40.peak_eflops, t40.sustained_eflops, t40.images_per_s,
              3e6 / t40.images_per_s / 3600.0);
  return 0;
}
