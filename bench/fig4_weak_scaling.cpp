// Reproduces paper Fig. 4 (bottom): weak scaling of training throughput —
// images/s and sustained EFLOPS vs node count as data parallelism grows
// under fixed model-parallel settings, for all five configurations.
#include <cstdio>

#include "aeris/perf/paper_configs.hpp"

int main() {
  using namespace aeris::perf;
  std::printf("== Fig. 4 (bottom): weak scaling via data parallelism ==\n");
  for (const PaperConfig& c : paper_configs()) {
    std::printf("\n%s (WP=%d, PP=%d, GAS=%d, %s) — nodes/instance %d\n",
                c.name.c_str(), c.wp, c.pp, c.gas,
                c.on_lumi ? "LUMI" : "Aurora", c.wp * c.pp);
    std::printf("%8s %4s %8s %9s %9s %8s\n", "nodes", "DP", "img/s", "EF(S)",
                "EF(P)", "eff%");
    double base_per_dp = 0.0;
    for (int dp = 1; dp <= c.dp * 2; dp *= 2) {
      JobConfig j = c.job();
      j.dp = dp;
      const Throughput t = evaluate(j);
      if (dp == 1) base_per_dp = t.images_per_s;
      std::printf("%8d %4d %8.1f %9.2f %9.2f %8.1f\n", j.nodes(), dp,
                  t.images_per_s, t.sustained_eflops, t.peak_eflops,
                  100.0 * t.images_per_s / (base_per_dp * dp));
    }
    // The paper's reported scale point.
    JobConfig j = c.job();
    const Throughput t = evaluate(j);
    std::printf("%8d %4d %8.1f %9.2f %9.2f   <- Table III point "
                "(paper EF(S)=%.2f)\n",
                j.nodes(), j.dp, t.images_per_s, t.sustained_eflops,
                t.peak_eflops, c.paper_ef_sustained);
  }
  std::printf("\nPaper headline: 95%% weak-scaling efficiency for the 40B "
              "configuration at 10,080 nodes.\n");
  return 0;
}
