// Reproduces paper Fig. 6: tropical-cyclone track and intensity forecasts
// at decreasing lead times (the Hurricane Laura case study). The strongest
// storm in the test segment of the synthetic reanalysis is identified with
// the pressure-minimum tracker; AERIS ensembles and the IFS-ENS-like
// physics ensemble are launched 7, 5 and 3 days before its peak, and
// track / intensity errors versus the truth track are reported.
#include <algorithm>
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/tracker.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  DomainConfig cfg;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  auto model = train_or_load_model(d, core::Objective::kTrigFlow,
                                   "aeris_cache");

  // Find the deepest pressure minimum in the test period (the "Laura").
  metrics::TrackerConfig trk;
  std::int64_t peak_t = -1;
  metrics::StormFix peak_fix;
  peak_fix.min_pressure = 1e9;
  for (std::int64_t t = d.ds.test_begin() + 7; t + 3 < d.ds.size(); ++t) {
    for (const auto& fix : metrics::detect_centers(d.ds.state(t), trk, 0)) {
      if (fix.min_pressure < peak_fix.min_pressure) {
        peak_fix = fix;
        peak_t = t;
      }
    }
  }
  if (peak_t < 0) {
    std::printf("No storm found in the test period — rerun with a longer "
                "record (cfg.samples).\n");
    return 0;
  }
  std::printf("== Fig. 6: storm case study ==\n");
  std::printf("peak at day %lld: min MSLP %.1f hPa, max wind %.1f at "
              "(%.0f, %.0f)\n\n",
              static_cast<long long>(peak_t), peak_fix.min_pressure,
              peak_fix.max_wind, peak_fix.row, peak_fix.col);

  const std::int64_t members = 4;
  for (const std::int64_t lead : {7, 5, 3}) {
    const std::int64_t start = peak_t - lead;
    const std::int64_t steps =
        std::min<std::int64_t>(lead + 2, d.ds.size() - 1 - start);
    auto truth = truth_sequence(d, start, steps);

    // The truth track, seeded from the analysis-time detection nearest to
    // where the storm is at `start`.
    const auto init_fixes = metrics::detect_centers(d.ds.state(start), trk, 0);
    double row0 = peak_fix.row, col0 = peak_fix.col;
    double best = 1e18;
    for (const auto& f : init_fixes) {
      const double dr = f.row - peak_fix.row;
      const double dc = f.col - peak_fix.col;
      const double dist = dr * dr + dc * dc;
      if (dist < best) {
        best = dist;
        row0 = f.row;
        col0 = f.col;
      }
    }
    const auto truth_track = metrics::track_storm(truth, trk, row0, col0);

    auto ens = forecast_ensemble(*model, core::Objective::kTrigFlow, d, start,
                                 steps, members);
    auto ifs = ifs_ens_forecast(d, start, steps, members);

    auto ensemble_errors = [&](const std::vector<std::vector<Tensor>>& e,
                               const char* name) {
      double terr = 0.0, ierr = 0.0;
      int found = 0;
      for (const auto& member : e) {
        const auto track = metrics::track_storm(member, trk, row0, col0);
        if (track && truth_track) {
          const double te =
              metrics::track_error(*track, *truth_track, cfg.grid);
          if (te < 1e17) {
            terr += te;
            ierr += metrics::intensity_error(*track, *truth_track);
            ++found;
          }
        }
      }
      if (found == 0) {
        std::printf("  %-14s no member held a trackable storm\n", name);
      } else {
        std::printf("  %-14s mean track error %.2f cells, intensity error "
                    "%.2f (over %d/%lld members)\n",
                    name, terr / found, ierr / found, found,
                    static_cast<long long>(e.size()));
      }
    };

    std::printf("lead %lld days (init day %lld, %lld-step forecast):\n",
                static_cast<long long>(lead), static_cast<long long>(start),
                static_cast<long long>(steps));
    if (truth_track) {
      std::printf("  truth track: %zu fixes, final wind %.1f\n",
                  truth_track->size(), truth_track->back().max_wind);
    } else {
      std::printf("  (storm not yet trackable at this lead)\n");
    }
    ensemble_errors(ens, "AERIS");
    ensemble_errors(ifs, "IFS-ENS-like");
  }
  std::printf("\nPaper shape: track errors shrink as lead decreases; the\n"
              "probabilistic system keeps the vortex and its intensification\n"
              "(Laura: minimal track error at 7-day lead, RI captured at 5).\n");
  return 0;
}
