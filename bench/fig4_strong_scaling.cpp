// Reproduces paper Fig. 4 (top): strong scaling of the 40B configuration,
// driven two ways at fixed global batch:
//  * GAS-driven: batch 1960 split over more DP replicas (fewer microbatches
//    per pipeline -> growing 1F1B bubble); paper: 81.6% efficiency.
//  * WP-driven: batch 140, window parallelism 36 -> 64 -> 144 (fewer tokens
//    per tile -> desaturation + relatively larger gradient reduction);
//    paper efficiencies: 100%, 87%, 64%.
#include <cstdio>

#include "aeris/perf/paper_configs.hpp"

int main() {
  using namespace aeris::perf;
  const PaperConfig c = flagship_40b();

  std::printf("== Fig. 4 (top, GAS-driven): 40B, GBS = 1960 ==\n");
  std::printf("%8s %4s %5s %8s %9s %8s\n", "nodes", "DP", "GAS", "img/s",
              "EF(S)", "eff%");
  double base = 0.0;
  int base_dp = 0;
  for (int dp : {2, 4, 7, 14}) {
    JobConfig j = c.job();
    j.dp = dp;
    j.gas = 1960 / dp;
    const Throughput t = evaluate(j);
    if (base == 0.0) {
      base = t.images_per_s;
      base_dp = dp;
    }
    std::printf("%8d %4d %5d %8.1f %9.2f %8.1f\n", j.nodes(), dp, j.gas,
                t.images_per_s, t.sustained_eflops,
                100.0 * t.images_per_s /
                    (base * static_cast<double>(dp) / base_dp));
  }
  std::printf("(paper: 81.6%% strong-scaling efficiency; losses mainly from "
              "the pipeline bubble)\n");

  std::printf("\n== Fig. 4 (top, WP-driven): 40B, GBS = 140, DP = 1 ==\n");
  std::printf("%8s %5s %5s %8s %9s %8s\n", "nodes", "WP", "GAS", "img/s",
              "EF(S)", "eff%");
  double wp_base = 0.0;
  for (int wp : {36, 64, 144}) {
    JobConfig j = c.job();
    j.dp = 1;
    j.gas = 140;
    j.wp = wp;
    const Throughput t = evaluate(j);
    if (wp == 36) wp_base = t.images_per_s / 36.0;
    std::printf("%8d %5d %5d %8.1f %9.2f %8.1f\n", j.nodes(), wp, j.gas,
                t.images_per_s, t.sustained_eflops,
                100.0 * t.images_per_s / (wp_base * wp));
  }
  std::printf("(paper: 100%%, 87%%, 64%% — WP=144 is 4x larger than WP=36 "
              "but only ~2.4x faster)\n");
  return 0;
}
