// Reproduces paper Table II: the AERIS model configurations, with the
// analytic parameter count of each (validated against constructed models
// in tests/perf) next to the paper's nominal label.
#include <cstdio>

#include "aeris/perf/paper_configs.hpp"

int main() {
  using namespace aeris::perf;
  std::printf("== Table II: AERIS model configurations ==\n");
  std::printf(
      "%-7s %-10s %4s %5s %6s %6s %7s %6s | %12s %8s\n", "Params", "WP(AxB)",
      "PP", "GAS", "Dim", "Heads", "FFN", "Nodes", "analytic", "ratio");
  for (const PaperConfig& c : paper_configs()) {
    const double params = static_cast<double>(arch_params(c.arch));
    std::printf(
        "%-7s %2d(%dx%d)%*s %4d %5d %6lld %6lld %7lld %6d | %10.2fB %7.2fx\n",
        c.name.c_str(), c.wp, c.wp_a, c.wp_b,
        c.wp >= 10 ? 2 : 3, "", c.pp, c.gas,
        static_cast<long long>(c.arch.dim),
        static_cast<long long>(c.arch.heads),
        static_cast<long long>(c.arch.ffn), c.wp * c.pp, params / 1e9,
        params / c.nominal_params);
  }
  std::printf(
      "\nNotes: each pipeline block stage holds 2 transformer blocks (plain\n"
      "+ shifted window); PP = SwinLayers + 2 separated edge stages. The 40B\n"
      "and 80B WP values follow the running text (36, 64), which matches\n"
      "Nodes = WP x PP where Table II's WP column does not (see DESIGN.md).\n");
  return 0;
}
