// Reproduces paper Fig. 5: medium-range ensemble skill.
//  (a) latitude-weighted ensemble-mean RMSE, CRPS and spread/skill ratio
//      vs lead time for AERIS (TrigFlow diffusion) against the GenCast-like
//      EDM diffusion baseline, the IFS-ENS-like perturbed-physics ensemble,
//      and a deterministic MSE-trained twin — on Z500, T850 and Q700;
//  (b) the spectral-blur diagnostic behind §IV-A (deterministic forecasts
//      lose small-scale power; diffusion retains it);
//  (c) heatwave case study: ensemble T2m trace over a land box around the
//      largest warm anomaly in the test period (paper Fig. 5b).
//
// Absolute skill is limited by the tiny training budget (~2k images vs the
// paper's 3M); EXPERIMENTS.md records the shape comparisons.
#include <cstdio>

#include "aeris/experiments/domain.hpp"
#include "aeris/metrics/scores.hpp"
#include "aeris/metrics/spectra.hpp"

using namespace aeris;
using namespace aeris::experiments;

int main() {
  DomainConfig cfg;
  Domain d = build_domain_cached(cfg, "aeris_cache");
  std::printf("dataset: %lld days, train %lld, test from %lld; residual "
              "sigma_d = %.3f\n",
              static_cast<long long>(d.ds.size()),
              static_cast<long long>(d.ds.train_size()),
              static_cast<long long>(d.ds.test_begin()),
              d.cfg.trigflow.sigma_d);

  auto aeris_model = train_or_load_model(d, core::Objective::kTrigFlow,
                                         "aeris_cache");
  auto edm_model = train_or_load_model(d, core::Objective::kEdm,
                                       "aeris_cache");
  auto det_model = train_or_load_model(d, core::Objective::kDeterministic,
                                       "aeris_cache");

  const std::int64_t steps = 10;   // lead times 1..10 days
  const std::int64_t members = 5;
  const std::vector<std::int64_t> ics = {d.ds.test_begin() + 1,
                                         d.ds.test_begin() + 8,
                                         d.ds.test_begin() + 15};
  struct VarSpec { const char* name; std::int64_t idx; };
  const VarSpec vars[] = {{"Z500", 5}, {"T850", 6}, {"Q700", 7}};

  // scores[system][var][lead] accumulated over initial conditions.
  const char* systems[] = {"AERIS", "GenCast-like", "IFS-ENS-like",
                           "Deterministic", "Persistence"};
  double rmse[5][3][16] = {}, crps_s[5][3][16] = {}, ssr[5][3][16] = {};

  for (const std::int64_t t0 : ics) {
    auto ens_aeris = forecast_ensemble(*aeris_model,
                                       core::Objective::kTrigFlow, d, t0,
                                       steps, members);
    auto ens_edm = forecast_ensemble(*edm_model, core::Objective::kEdm, d, t0,
                                     steps, members);
    auto ens_ifs = ifs_ens_forecast(d, t0, steps, members);
    auto det = forecast_deterministic(*det_model, d, t0, steps);
    auto truth = truth_sequence(d, t0, steps);

    for (std::int64_t s = 0; s < steps; ++s) {
      for (int v = 0; v < 3; ++v) {
        const std::int64_t var = vars[v].idx;
        auto score = [&](int sys, const std::vector<Tensor>& mem) {
          rmse[sys][v][s] +=
              metrics::ensemble_mean_rmse(mem, truth[s], var, d.lat_w);
          crps_s[sys][v][s] += metrics::crps(mem, truth[s], var, d.lat_w);
          ssr[sys][v][s] +=
              metrics::spread_skill_ratio(mem, truth[s], var, d.lat_w);
        };
        std::vector<Tensor> mem;
        for (auto& m : ens_aeris) mem.push_back(m[s]);
        score(0, mem);
        mem.clear();
        for (auto& m : ens_edm) mem.push_back(m[s]);
        score(1, mem);
        mem.clear();
        for (auto& m : ens_ifs) mem.push_back(m[s]);
        score(2, mem);
        score(3, {det[s]});
        score(4, {d.ds.state(t0)});
      }
    }

    // Spectral blur at day 5 (Z500): forecast/truth small-scale power.
    if (t0 == ics[0]) {
      std::printf("\n-- small-scale power ratio vs truth (Z500, day 5) --\n");
      std::printf("  AERIS member:      %.2f\n",
                  metrics::small_scale_power_ratio(ens_aeris[0][4], truth[4], 5));
      std::printf("  AERIS ens. mean:   %.2f\n",
                  metrics::small_scale_power_ratio(
                      metrics::ensemble_mean(std::vector<Tensor>{
                          ens_aeris[0][4], ens_aeris[1][4], ens_aeris[2][4],
                          ens_aeris[3][4], ens_aeris[4][4]}),
                      truth[4], 5));
      std::printf("  Deterministic:     %.2f\n",
                  metrics::small_scale_power_ratio(det[4], truth[4], 5));
      std::printf("(paper §IV-A: deterministic forecasts blur; a diffusion "
                  "member keeps full small-scale power)\n");
    }
  }

  const double n_ic = static_cast<double>(ics.size());
  for (int v = 0; v < 3; ++v) {
    std::printf("\n== Fig. 5a: %s ==\n", vars[v].name);
    std::printf("%-14s", "lead (days)");
    for (std::int64_t s = 0; s < steps; ++s) {
      std::printf(" %6lld", static_cast<long long>(s + 1));
    }
    std::printf("\n");
    for (int metric = 0; metric < 3; ++metric) {
      std::printf("%s\n", metric == 0 ? "RMSE (ens. mean)"
                          : metric == 1 ? "CRPS" : "Spread/skill");
      const int n_sys = metric == 0 ? 5 : (metric == 1 ? 3 : 3);
      for (int sys = 0; sys < n_sys; ++sys) {
        if (metric == 2 && sys == 3) continue;
        std::printf("  %-12s", systems[sys]);
        for (std::int64_t s = 0; s < steps; ++s) {
          const double val = metric == 0   ? rmse[sys][v][s]
                             : metric == 1 ? crps_s[sys][v][s]
                                           : ssr[sys][v][s];
          std::printf(" %6.2f", val / n_ic);
        }
        std::printf("\n");
      }
    }
  }

  // ---- Fig. 5b: heatwave case study ----
  // Find the largest T2m warm anomaly over a land box in the test period.
  const std::int64_t h = cfg.grid;
  const std::int64_t r0 = h * 3 / 10, r1 = h * 5 / 10;  // continent A band
  const std::int64_t c0 = h / 10, c1 = h * 3 / 10;
  double clim = 0.0;
  for (std::int64_t t = 0; t < d.ds.train_size(); t += 7) {
    clim += metrics::box_mean(d.ds.state(t), 0, r0, r1, c0, c1);
  }
  clim /= static_cast<double>((d.ds.train_size() + 6) / 7);
  std::int64_t peak_t = d.ds.test_begin() + 8;
  double peak_anom = -1e9;
  for (std::int64_t t = d.ds.test_begin() + 8; t + 4 < d.ds.size(); ++t) {
    const double anom =
        metrics::box_mean(d.ds.state(t), 0, r0, r1, c0, c1) - clim;
    if (anom > peak_anom) {
      peak_anom = anom;
      peak_t = t;
    }
  }
  const std::int64_t lead = 8;
  const std::int64_t start = peak_t - lead;
  const std::int64_t hw_steps =
      std::min<std::int64_t>(lead + 4, d.ds.size() - 1 - start);
  std::printf("\n== Fig. 5b: heatwave case (peak anomaly %.2f deg at day %lld,"
              " init %lld days before) ==\n",
              peak_anom, static_cast<long long>(peak_t),
              static_cast<long long>(lead));
  auto hw_ens = forecast_ensemble(*aeris_model, core::Objective::kTrigFlow, d,
                                  start, hw_steps, members);
  std::printf("%-6s %8s %8s %8s %8s\n", "day", "truth", "ens.mean", "ens.min",
              "ens.max");
  for (std::int64_t s = 0; s < hw_steps; ++s) {
    const double truth_box =
        metrics::box_mean(d.ds.state(start + 1 + s), 0, r0, r1, c0, c1);
    double mean = 0.0, lo = 1e9, hi = -1e9;
    for (auto& m : hw_ens) {
      const double b = metrics::box_mean(m[s], 0, r0, r1, c0, c1);
      mean += b;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    mean /= static_cast<double>(members);
    std::printf("%-6lld %8.2f %8.2f %8.2f %8.2f%s\n",
                static_cast<long long>(s + 1), truth_box, mean, lo, hi,
                start + 1 + s == peak_t ? "   <- heatwave peak" : "");
  }
  return 0;
}
