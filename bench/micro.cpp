// Kernel-level microbenchmarks (google-benchmark): the compute and
// communication primitives underlying every experiment.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "aeris/core/ensemble.hpp"
#include "aeris/core/model.hpp"
#include "aeris/core/sampler.hpp"
#include "aeris/core/window.hpp"
#include "aeris/serving/cluster.hpp"
#include "aeris/serving/server.hpp"
#include "aeris/nn/attention.hpp"
#include "aeris/physics/qg.hpp"
#include "aeris/swipe/comm.hpp"
#include "aeris/swipe/fault.hpp"
#include "aeris/swipe/zero1.hpp"
#include "aeris/swipe/window_layout.hpp"
#include "aeris/nn/cond_cache.hpp"
#include "aeris/tensor/bf16.hpp"
#include "aeris/tensor/gemm.hpp"

namespace {

using namespace aeris;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a({n, n}), b({n, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBf16(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a({n, n}), b({n, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, false, false, GemmPrecision::kBF16));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBf16)->Arg(64)->Arg(128)->Arg(256);

// bf16 GEMM at the rectangular shapes the model actually runs: qkv
// projection (tokens x 3*dim x dim), SwiGLU up/gate (tokens x ffn x dim)
// and down (tokens x dim x ffn) for the BM_ModelForward configuration
// (32x32 grid = 1024 tokens, dim 32, ffn 64).
void BM_GemmBf16ModelShapes(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Tensor a({m, k}), b({k, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, false, false, GemmPrecision::kBF16));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmBf16ModelShapes)
    ->Args({1024, 96, 32})
    ->Args({1024, 64, 32})
    ->Args({1024, 32, 64})
    ->ArgNames({"m", "n", "k"});

// The Linear fast path: B (the weight) is pre-rounded once and consumed
// as-is (kBF16A rounds only the activations at pack time), versus kBF16
// re-rounding both operands every call.
void BM_GemmBf16PreRounded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a({n, n}), b({n, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (float& v : b.flat()) v = bf16_round(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matmul(a, b, false, false, GemmPrecision::kBF16A));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBf16PreRounded)->Arg(128);

void BM_WindowAttentionForward(benchmark::State& state) {
  nn::WindowAttention attn("a", 32, 4, 8, 8);
  Philox rng(2);
  attn.init(rng, 0);
  Tensor x({16, 64, 32});
  rng.fill_normal(x, 1, 0);
  nn::FwdCtx ctx;
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x, ctx));
}
BENCHMARK(BM_WindowAttentionForward);

// Streaming (inference-ctx) path: online softmax, no [B,H,T,T] probs.
void BM_WindowAttentionInference(benchmark::State& state) {
  nn::WindowAttention attn("a", 32, 4, 8, 8);
  Philox rng(2);
  attn.init(rng, 0);
  Tensor x({16, 64, 32});
  rng.fill_normal(x, 1, 0);
  nn::FwdCtx ctx(nn::FwdCtx::Mode::kInference);
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x, ctx));
}
BENCHMARK(BM_WindowAttentionInference);

void BM_WindowPartitionRoundTrip(benchmark::State& state) {
  Philox rng(3);
  Tensor x({32, 32, 32});
  rng.fill_normal(x, 1, 0);
  for (auto _ : state) {
    Tensor wins = core::window_partition(x, 8, 8, 4);
    benchmark::DoNotOptimize(core::window_reverse(wins, 32, 32, 8, 8, 4));
  }
}
BENCHMARK(BM_WindowPartitionRoundTrip);

void BM_ModelForward(benchmark::State& state) {
  core::ModelConfig mc;
  mc.h = 32;
  mc.w = 32;
  mc.in_channels = 23;
  mc.out_channels = 10;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox rng(4);
  Tensor x({1, 32, 32, 23});
  rng.fill_normal(x, 1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, Tensor({1}, 0.5f)));
  }
}
BENCHMARK(BM_ModelForward);

// The conditioning-cache win in isolation, at BM_EnsembleRollout's model
// configuration (where conditioning is a visible slice of the forward):
// one call per solver-stage time of a short fixed schedule, exactly the
// lookup pattern of a rollout. cached:0 recomputes TimeEmbedding + every
// AdaLN head each call; cached:1 hits the warm per-"forecast" cache on
// all but the first schedule sweep.
void BM_CondCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox rng(4);
  Tensor x({1, 16, 16, 12});
  rng.fill_normal(x, 1, 0);
  const float schedule[] = {1.0f, 0.8f, 0.6f, 0.45f, 0.3f, 0.2f, 0.1f, 0.05f};
  nn::CondCache cache;
  for (auto _ : state) {
    for (const float t : schedule) {
      benchmark::DoNotOptimize(
          model.forward(x, Tensor({1}, t), cached ? &cache : nullptr));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_CondCache)->Arg(0)->Arg(1)->ArgNames({"cached"});

void BM_ReshardPlan(benchmark::State& state) {
  swipe::WindowLayout from(32, 32, 8, 8, 2, 2, 2, 0);
  swipe::WindowLayout to(32, 32, 8, 8, 2, 2, 2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swipe::make_reshard_plan(from, to, 0, 0));
  }
}
BENCHMARK(BM_ReshardPlan);

// Gradient-sync ring allreduce on a DP-group-sized buffer. Tracks the
// comm path that dominates the optimizer step (§V-A gradient reductions).
void BM_AllreduceSum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t elems = 1 << 16;
  swipe::World world(n);
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      swipe::Communicator comm(world, members, rank, 1);
      std::vector<float> data(static_cast<std::size_t>(elems),
                              static_cast<float>(rank));
      comm.allreduce_sum(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * n * elems *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_AllreduceSum)->Arg(4)->Arg(8);

// Bench guard for the fault-injection hooks: same collective with a fault
// plan ARMED but whose events never match (wrong send ordinals), pinning
// that the per-send hook — one atomic counter bump + a linear match over a
// tiny event list — costs ~0 on the hot path vs BM_AllreduceSum.
void BM_AllreduceSumFaultArmed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t elems = 1 << 16;
  swipe::World world(n);
  auto plan = std::make_shared<swipe::FaultPlan>();
  plan->add(swipe::FaultEvent{swipe::FaultKind::kKillRank, /*rank=*/0,
                              /*nth_send=*/~0ull});
  world.set_fault_plan(plan);
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      swipe::Communicator comm(world, members, rank, 1);
      std::vector<float> data(static_cast<std::size_t>(elems),
                              static_cast<float>(rank));
      comm.allreduce_sum(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * n * elems *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_AllreduceSumFaultArmed)->Arg(8);

// One ZeRO-1 optimizer step (allreduce + sharded AdamW + parameter
// redistribution) over a persistent optimizer, amortizing thread spawn
// over several steps per world.run.
void BM_Zero1Step(benchmark::State& state) {
  const int n = 8;
  const int nparams = 32;
  const std::int64_t elems = 8192;
  const int steps_per_iter = 4;
  swipe::World world(n);
  std::vector<std::vector<nn::Param>> params(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<swipe::Zero1Optimizer>> opts(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& mine = params[static_cast<std::size_t>(r)];
    for (int i = 0; i < nparams; ++i) {
      mine.emplace_back("p" + std::to_string(i), Shape{elems});
      mine.back().value.fill(1.0f);
      mine.back().grad.fill(0.5f);
    }
    nn::ParamList list;
    for (auto& p : mine) list.push_back(&p);
    opts[static_cast<std::size_t>(r)] =
        std::make_unique<swipe::Zero1Optimizer>(list);
  }
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      swipe::Communicator group(world, members, rank, 1);
      for (int s = 0; s < steps_per_iter; ++s) {
        opts[static_cast<std::size_t>(rank)]->step(group, 1e-3f,
                                                   1.0f / static_cast<float>(n));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * steps_per_iter * nparams *
                          elems);
}
BENCHMARK(BM_Zero1Step);

// Inter-stage activation handoff: ping-pong of a microbatch-sized
// activation between two pipeline-neighbour ranks.
void BM_PipelineHandoff(benchmark::State& state) {
  const std::int64_t elems = 16 * 1024;
  const int round_trips = 16;
  swipe::World world(2);
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<float> act(static_cast<std::size_t>(elems), 1.0f);
      for (int i = 0; i < round_trips; ++i) {
        const std::uint64_t tag = static_cast<std::uint64_t>(i);
        if (rank == 0) {
          world.send(0, 1, tag, act);
          benchmark::DoNotOptimize(world.recv(0, 1, tag));
        } else {
          world.send(1, 0, tag, act);
          benchmark::DoNotOptimize(world.recv(1, 0, tag));
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * round_trips * 2 * elems *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_PipelineHandoff);

void BM_Alltoall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  swipe::World world(n);
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      swipe::Communicator comm(world, members, rank, 1);
      std::vector<std::vector<float>> bufs(static_cast<std::size_t>(n),
                                           std::vector<float>(1024));
      benchmark::DoNotOptimize(comm.alltoall(std::move(bufs)));
    });
  }
}
BENCHMARK(BM_Alltoall)->Arg(4)->Arg(8);

void BM_QgStep(benchmark::State& state) {
  physics::QgParams p;
  p.h = 32;
  p.w = 32;
  p.lx = 2 * M_PI;
  physics::TwoLayerQg qg(p);
  qg.init_random(Philox(5), 0, 3e-2);
  qg.run(200);
  for (auto _ : state) qg.step();
}
BENCHMARK(BM_QgStep);

// Batched + threaded ensemble inference (the tentpole of the reentrant
// forward refactor): {members}x{threads}x{batch}. members/1/1 is the old
// serial engine's workload; members/1/members is the batched-step win at
// one thread; members/T/1 distributes member chunks over T drivers sharing
// one read-only model. Items/s counts member-steps, so ratios between
// configurations are member-throughput speedups. Thread scaling is linear
// in *physical cores*: on a 1-core CI box the threaded rows show parity,
// not speedup.
void BM_EnsembleRollout(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const std::int64_t batch = state.range(2);
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  core::EnsembleOptions opts;
  opts.batch = batch;
  opts.threads = threads;
  const std::int64_t steps = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.ensemble_rollout(init, forcings, steps, members, opts));
  }
  state.SetItemsProcessed(state.iterations() * members * steps);
}
BENCHMARK(BM_EnsembleRollout)
    ->Args({8, 1, 1})
    ->Args({8, 1, 8})
    ->Args({8, 2, 1})
    ->Args({8, 4, 1})
    ->ArgNames({"members", "threads", "batch"})
    ->UseRealTime();  // workers do the computing; driver CPU time is idle

// The serving front-end under concurrent clients: each iteration submits
// `clients` simultaneous requests that the server packs across requests
// into stacked solves. Baseline for the admission/packing overhead on top
// of BM_EnsembleRollout's raw engine throughput.
void BM_ForecastServer(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::int64_t members = state.range(1);
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  serving::ServerOptions opts;
  opts.workers = 2;
  opts.batch = 8;
  serving::ForecastServer server(engine, opts);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  const std::int64_t steps = 2;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        serving::ForecastRequest req;
        req.init = init;
        req.forcings_at = forcings;
        req.members = members;
        req.steps = steps;
        req.seed = static_cast<std::uint64_t>(c);
        benchmark::DoNotOptimize(server.forecast(req));
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * members * steps);
}
BENCHMARK(BM_ForecastServer)
    ->Args({1, 4})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 2})
    ->ArgNames({"clients", "members"})
    ->UseRealTime();  // server workers compute; the driver only waits

// BM_ForecastServer's workload through a registry-backed model zoo:
// `variants` engine variants (v0 the fine 16x16 model, the rest
// shared-backbone 8x8 previews) behind one server, with `clients`
// concurrent requests round-robin pinned across them. The delta against
// BM_ForecastServer at matching client counts prices per-request routing
// plus mixed-variant packing (packs never mix engines, so the workers see
// more, smaller packs).
void BM_ForecastServerMultiModel(benchmark::State& state) {
  const int variants = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel fine(mc, 1);
  core::ModelConfig cc = mc;
  cc.h = 8;
  cc.w = 8;
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  std::vector<std::unique_ptr<core::AerisModel>> previews;
  std::vector<std::unique_ptr<core::ParallelEnsembleEngine>> engines;
  serving::ModelRegistry registry;
  engines.push_back(
      std::make_unique<core::ParallelEnsembleEngine>(fine, tf, sc, 7));
  registry.add("v0", *engines.back(), /*skill_tier=*/1);
  for (int v = 1; v < variants; ++v) {
    previews.push_back(std::make_unique<core::AerisModel>(cc, fine));
    engines.push_back(std::make_unique<core::ParallelEnsembleEngine>(
        *previews.back(), tf, sc, 7));
    registry.add("v" + std::to_string(v), *engines.back(), 0);
  }
  serving::ServerOptions opts;
  opts.workers = 2;
  opts.batch = 8;
  serving::ForecastServer server(registry, opts);
  Philox rng(8);
  Tensor fine_init({16, 16, 5});
  rng.fill_normal(fine_init, 1, 0);
  Tensor fine_forcing({16, 16, 2});
  rng.fill_normal(fine_forcing, 1, 1);
  Tensor coarse_init({8, 8, 5});
  rng.fill_normal(coarse_init, 1, 2);
  Tensor coarse_forcing({8, 8, 2});
  rng.fill_normal(coarse_forcing, 1, 3);
  const std::int64_t members = 4, steps = 2;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        const bool coarse = c % variants != 0;
        serving::ForecastRequest req;
        req.init = coarse ? coarse_init : fine_init;
        req.forcings_at = [&, coarse](std::int64_t) {
          return coarse ? coarse_forcing : fine_forcing;
        };
        req.members = members;
        req.steps = steps;
        req.seed = static_cast<std::uint64_t>(c);
        req.model = "v" + std::to_string(c % variants);
        benchmark::DoNotOptimize(server.forecast(req));
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * members * steps);
}
BENCHMARK(BM_ForecastServerMultiModel)
    ->Args({2, 4})
    ->Args({2, 8})
    ->ArgNames({"variants", "clients"})
    ->UseRealTime();

// BM_ForecastServer's workload through the distributed front-end: the same
// requests admitted by the same ledger, but packs ride the SWiPe wire to
// worker ranks (encode, send, solve, result, commit). The delta against
// BM_ForecastServer at matching clients/members prices the wire.
void BM_ClusterForecastServer(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  const std::int64_t members = state.range(2);
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  serving::ClusterOptions co;
  co.ranks = ranks;
  co.serve.batch = 8;
  serving::ClusterForecastServer cluster(engine, co);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  const std::int64_t steps = 2;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        serving::ForecastRequest req;
        req.init = init;
        req.forcings_at = forcings;
        req.members = members;
        req.steps = steps;
        req.seed = static_cast<std::uint64_t>(c);
        benchmark::DoNotOptimize(cluster.forecast(req));
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * members * steps);
}
BENCHMARK(BM_ClusterForecastServer)
    ->Args({2, 4, 4})
    ->Args({3, 4, 4})
    ->Args({5, 8, 2})
    ->ArgNames({"ranks", "clients", "members"})
    ->UseRealTime();  // worker ranks compute; the driver only waits

// Prices elasticity. kills:0 runs BM_ClusterForecastServer's exact
// ranks:3/clients:4/members:4 workload on a rejoin-armed cluster — the
// membership lane, the spare parked rank and the per-send fault hook all
// idle alongside the hot path, so the delta against that disarmed row is
// the standing cost of being elastic (expected: in the noise). kills:1
// measures the full recovery cycle per iteration: construct the server
// with a scripted kill, lose the worker mid-request (typed drain + park),
// offer a replacement, wait for the un-park and complete a request — the
// end-to-end latency of membership collapse and repair.
void BM_ClusterRejoin(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int kills = static_cast<int>(state.range(1));
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  serving::ForecastRequest req;
  req.init = init;
  req.forcings_at = forcings;
  req.members = 4;
  req.steps = 2;
  req.seed = 3;

  if (kills == 0) {
    serving::ClusterOptions co;
    co.ranks = ranks;
    co.rejoin = true;
    co.max_ranks = ranks + 1;  // one parked spare slot
    co.serve.batch = 8;
    serving::ClusterForecastServer cluster(engine, co);
    const int clients = 4;
    for (auto _ : state) {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          serving::ForecastRequest r = req;
          r.seed = static_cast<std::uint64_t>(c);
          benchmark::DoNotOptimize(cluster.forecast(r));
        });
      }
      for (auto& t : pool) t.join();
    }
    state.SetItemsProcessed(state.iterations() * clients * req.members *
                            req.steps);
    return;
  }
  {
    for (auto _ : state) {
      serving::ClusterOptions co;
      co.ranks = ranks;
      co.min_quorum = ranks - 1;  // any death parks the server
      co.rejoin = true;
      co.serve.batch = 8;
      auto plan = std::make_shared<swipe::FaultPlan>();
      plan->add(swipe::FaultEvent{swipe::FaultKind::kKillRank, 1, 0});
      co.fault_plan = plan;
      serving::ClusterForecastServer cluster(engine, co);
      benchmark::DoNotOptimize(cluster.forecast(req));  // typed drain
      cluster.offer_worker();
      while (cluster.parked()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      benchmark::DoNotOptimize(cluster.forecast(req));  // completes
    }
  }
  state.SetItemsProcessed(state.iterations() * req.members * req.steps);
}
BENCHMARK(BM_ClusterRejoin)
    ->Args({3, 0})
    ->Args({2, 1})
    ->Args({3, 1})
    ->ArgNames({"ranks", "kills"})
    ->UseRealTime();  // park/rejoin latency is wall-clock, not driver CPU

// BM_EnsembleRollout's members/1/1 and members/1/members rows under the
// opt-in bf16 compute path. On hardware without native bf16 dot products
// the rounding is pure overhead, so these rows are expected to trail their
// fp32 twins — they are here to quantify that cost, not to show a win.
void BM_EnsembleRolloutBf16(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  const std::int64_t batch = state.range(1);
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  engine.set_infer_precision(nn::InferPrecision::kBf16);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  core::EnsembleOptions opts;
  opts.batch = batch;
  opts.threads = 1;
  const std::int64_t steps = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.ensemble_rollout(init, forcings, steps, members, opts));
  }
  state.SetItemsProcessed(state.iterations() * members * steps);
}
BENCHMARK(BM_EnsembleRolloutBf16)
    ->Args({8, 1})
    ->Args({8, 8})
    ->ArgNames({"members", "batch"})
    ->UseRealTime();

// BM_ForecastServer's clients:4/members:4 row with the engine in bf16.
void BM_ForecastServerBf16(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::int64_t members = state.range(1);
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  core::TrigSamplerConfig sc;
  sc.steps = 4;
  sc.churn = 0.3f;
  core::ParallelEnsembleEngine engine(model, tf, sc, 7);
  engine.set_infer_precision(nn::InferPrecision::kBf16);
  serving::ServerOptions opts;
  opts.workers = 2;
  opts.batch = 8;
  serving::ForecastServer server(engine, opts);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  const std::int64_t steps = 2;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        serving::ForecastRequest req;
        req.init = init;
        req.forcings_at = forcings;
        req.members = members;
        req.steps = steps;
        req.seed = static_cast<std::uint64_t>(c);
        benchmark::DoNotOptimize(server.forecast(req));
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * members * steps);
}
BENCHMARK(BM_ForecastServerBf16)->Args({4, 4})
    ->ArgNames({"clients", "members"})
    ->UseRealTime();

// The few-step distillation payoff, measured at equal members/threads:
// consistency:0 runs the 10-step TrigFlow teacher (a skill-grade ODE step
// count), consistency:1 the 2-step consistency sampler over the same
// model. Items/s counts member-steps, so the row ratio is the serving
// speedup a distilled student buys — ~5x expected (10 vs 2 network
// evaluations per member-step); the perf gate is >=3x.
void BM_EnsembleRolloutFewStep(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const std::int64_t batch = state.range(2);
  const bool consistency = state.range(3) != 0;
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  std::optional<core::ParallelEnsembleEngine> engine;
  if (consistency) {
    core::ConsistencySamplerConfig cc;
    cc.steps = 2;
    engine.emplace(model, tf, cc, 7);
  } else {
    core::TrigSamplerConfig sc;
    sc.steps = 10;
    sc.churn = 0.3f;
    engine.emplace(model, tf, sc, 7);
  }
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  core::EnsembleOptions opts;
  opts.batch = batch;
  opts.threads = threads;
  const std::int64_t steps = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->ensemble_rollout(init, forcings, steps, members, opts));
  }
  state.SetItemsProcessed(state.iterations() * members * steps);
}
BENCHMARK(BM_EnsembleRolloutFewStep)
    ->Args({8, 2, 8, 0})
    ->Args({8, 2, 8, 1})
    ->ArgNames({"members", "threads", "batch", "consistency"})
    ->UseRealTime();

// BM_ForecastServer's clients:4/members:4 workload with the engine's
// default sampler as the variable: consistency:0 is the 10-step teacher,
// consistency:1 the 2-step student. Same >=3x gate as the rollout pair.
void BM_ForecastServerFewStep(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::int64_t members = state.range(1);
  const bool consistency = state.range(2) != 0;
  core::ModelConfig mc;
  mc.h = 16;
  mc.w = 16;
  mc.in_channels = 12;
  mc.out_channels = 5;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  core::TrigFlowConfig tf;
  std::optional<core::ParallelEnsembleEngine> engine;
  if (consistency) {
    core::ConsistencySamplerConfig cc;
    cc.steps = 2;
    engine.emplace(model, tf, cc, 7);
  } else {
    core::TrigSamplerConfig sc;
    sc.steps = 10;
    sc.churn = 0.3f;
    engine.emplace(model, tf, sc, 7);
  }
  serving::ServerOptions opts;
  opts.workers = 2;
  opts.batch = 8;
  serving::ForecastServer server(*engine, opts);
  Philox rng(8);
  Tensor init({16, 16, 5});
  rng.fill_normal(init, 1, 0);
  Tensor forcing({16, 16, 2});
  rng.fill_normal(forcing, 1, 1);
  core::ForcingFn forcings = [&](std::int64_t) { return forcing; };
  const std::int64_t steps = 2;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        serving::ForecastRequest req;
        req.init = init;
        req.forcings_at = forcings;
        req.members = members;
        req.steps = steps;
        req.seed = static_cast<std::uint64_t>(c);
        benchmark::DoNotOptimize(server.forecast(req));
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * members * steps);
}
BENCHMARK(BM_ForecastServerFewStep)
    ->Args({4, 4, 0})
    ->Args({4, 4, 1})
    ->ArgNames({"clients", "members", "consistency"})
    ->UseRealTime();

void BM_TrigflowSamplerStep(benchmark::State& state) {
  core::TrigFlow tf(core::TrigFlowConfig{});
  core::DenoiserFn velocity = [](const Tensor& x, float) {
    return Tensor(x.shape());
  };
  core::TrigSamplerConfig cfg;
  cfg.steps = 6;
  Philox rng(6);
  std::uint64_t member = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sample_trigflow(velocity, {32, 32, 10}, tf, cfg, rng, member++));
  }
}
BENCHMARK(BM_TrigflowSamplerStep);

}  // namespace

BENCHMARK_MAIN();
