// Kernel-level microbenchmarks (google-benchmark): the compute and
// communication primitives underlying every experiment.
#include <benchmark/benchmark.h>

#include <numeric>

#include "aeris/core/model.hpp"
#include "aeris/core/sampler.hpp"
#include "aeris/core/window.hpp"
#include "aeris/nn/attention.hpp"
#include "aeris/nn/inference.hpp"
#include "aeris/physics/qg.hpp"
#include "aeris/swipe/comm.hpp"
#include "aeris/swipe/window_layout.hpp"
#include "aeris/tensor/gemm.hpp"

namespace {

using namespace aeris;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a({n, n}), b({n, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBf16(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a({n, n}), b({n, n});
  Philox rng(1);
  rng.fill_normal(a, 1, 0);
  rng.fill_normal(b, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, false, false, GemmPrecision::kBF16));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBf16)->Arg(128);

void BM_WindowAttentionForward(benchmark::State& state) {
  nn::WindowAttention attn("a", 32, 4, 8, 8);
  Philox rng(2);
  attn.init(rng, 0);
  Tensor x({16, 64, 32});
  rng.fill_normal(x, 1, 0);
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x));
}
BENCHMARK(BM_WindowAttentionForward);

// Streaming (inference-mode) path: online softmax, no [B,H,T,T] probs.
void BM_WindowAttentionInference(benchmark::State& state) {
  nn::WindowAttention attn("a", 32, 4, 8, 8);
  Philox rng(2);
  attn.init(rng, 0);
  Tensor x({16, 64, 32});
  rng.fill_normal(x, 1, 0);
  nn::InferenceModeGuard guard;
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x));
}
BENCHMARK(BM_WindowAttentionInference);

void BM_WindowPartitionRoundTrip(benchmark::State& state) {
  Philox rng(3);
  Tensor x({32, 32, 32});
  rng.fill_normal(x, 1, 0);
  for (auto _ : state) {
    Tensor wins = core::window_partition(x, 8, 8, 4);
    benchmark::DoNotOptimize(core::window_reverse(wins, 32, 32, 8, 8, 4));
  }
}
BENCHMARK(BM_WindowPartitionRoundTrip);

void BM_ModelForward(benchmark::State& state) {
  core::ModelConfig mc;
  mc.h = 32;
  mc.w = 32;
  mc.in_channels = 23;
  mc.out_channels = 10;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.ffn_hidden = 64;
  mc.win_h = 8;
  mc.win_w = 8;
  mc.cond_dim = 32;
  core::AerisModel model(mc, 1);
  Philox rng(4);
  Tensor x({1, 32, 32, 23});
  rng.fill_normal(x, 1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, Tensor({1}, 0.5f)));
  }
}
BENCHMARK(BM_ModelForward);

void BM_ReshardPlan(benchmark::State& state) {
  swipe::WindowLayout from(32, 32, 8, 8, 2, 2, 2, 0);
  swipe::WindowLayout to(32, 32, 8, 8, 2, 2, 2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swipe::make_reshard_plan(from, to, 0, 0));
  }
}
BENCHMARK(BM_ReshardPlan);

void BM_Alltoall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  swipe::World world(n);
  for (auto _ : state) {
    world.run([&](int rank) {
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      swipe::Communicator comm(world, members, rank, 1);
      std::vector<std::vector<float>> bufs(static_cast<std::size_t>(n),
                                           std::vector<float>(1024));
      benchmark::DoNotOptimize(comm.alltoall(std::move(bufs)));
    });
  }
}
BENCHMARK(BM_Alltoall)->Arg(4)->Arg(8);

void BM_QgStep(benchmark::State& state) {
  physics::QgParams p;
  p.h = 32;
  p.w = 32;
  p.lx = 2 * M_PI;
  physics::TwoLayerQg qg(p);
  qg.init_random(Philox(5), 0, 3e-2);
  qg.run(200);
  for (auto _ : state) qg.step();
}
BENCHMARK(BM_QgStep);

void BM_TrigflowSamplerStep(benchmark::State& state) {
  core::TrigFlow tf(core::TrigFlowConfig{});
  core::DenoiserFn velocity = [](const Tensor& x, float) {
    return Tensor(x.shape());
  };
  core::TrigSamplerConfig cfg;
  cfg.steps = 6;
  Philox rng(6);
  std::uint64_t member = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sample_trigflow(velocity, {32, 32, 10}, tf, cfg, rng, member++));
  }
}
BENCHMARK(BM_TrigflowSamplerStep);

}  // namespace

BENCHMARK_MAIN();
