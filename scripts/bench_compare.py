#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against the committed baseline.

Usage:
    scripts/bench_compare.py NEW.json [BASELINE.json] [--threshold 0.20]

BASELINE defaults to <repo>/BENCH_micro.json (regenerate it with the
`bench_micro_json` CMake target / scripts/bench_micro_json.sh). A benchmark
regresses when its real_time exceeds the baseline by more than the
threshold (default +20%). Exit status is 1 if any benchmark regressed,
0 otherwise — so the script can gate CI directly.

Benchmarks present on only one side are reported but never fail the run:
suites grow, and a missing row in a stale baseline should prompt a
baseline refresh, not a red build. Only "iteration"-type entries are
compared (aggregates like _mean/_stddev are skipped if present).

Stdlib-only on purpose; runs anywhere CMake does.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        rows[b["name"]] = float(b["real_time"])
    if not rows:
        raise SystemExit(f"error: no iteration benchmarks in {path}")
    return rows


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:9.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:9.3f} us"
    return f"{ns:9.1f} ns"


def main():
    repo = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new", help="fresh benchmark JSON to check")
    ap.add_argument(
        "baseline",
        nargs="?",
        default=str(repo / "BENCH_micro.json"),
        help="baseline JSON (default: repo BENCH_micro.json)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional real_time slowdown that counts as a regression "
        "(default 0.20 = +20%%)",
    )
    ap.add_argument(
        "--only",
        default=None,
        help="comma-separated benchmark-name prefixes; rows matching none "
        "of them are ignored entirely (the hot-row CI gate passes "
        "BM_Gemm,BM_WindowAttention,BM_CondCache,BM_EnsembleRollout,"
        "BM_ForecastServer)",
    )
    args = ap.parse_args()

    base = load_rows(args.baseline)
    new = load_rows(args.new)
    if args.only:
        prefixes = tuple(p for p in args.only.split(",") if p)
        base = {k: v for k, v in base.items() if k.startswith(prefixes)}
        new = {k: v for k, v in new.items() if k.startswith(prefixes)}
        if not new:
            raise SystemExit(f"error: no benchmarks match --only {args.only}")

    regressions = []
    improvements = []
    shared = sorted(set(base) & set(new))
    print(f"{'benchmark':58s} {'baseline':>12s} {'new':>12s} {'delta':>8s}")
    for name in shared:
        b, n = base[name], new[name]
        delta = (n - b) / b
        mark = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            mark = "  << REGRESSION"
        elif delta < -args.threshold:
            improvements.append((name, delta))
            mark = "  (faster)"
        print(f"{name:58s} {fmt_ns(b)} {fmt_ns(n)} {delta:+7.1%}{mark}")

    for name in sorted(set(new) - set(base)):
        print(f"{name:58s} {'--':>12s} {fmt_ns(new[name])}   (new, no baseline)")
    for name in sorted(set(base) - set(new)):
        print(f"{name:58s} {fmt_ns(base[name])} {'--':>12s}   (missing from run)")

    print(
        f"\n{len(shared)} compared, {len(regressions)} regressed "
        f"(> +{args.threshold:.0%}), {len(improvements)} improved."
    )
    if regressions:
        print("regressed:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}  {delta:+.1%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
