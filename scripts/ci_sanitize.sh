#!/usr/bin/env sh
# Sanitizer gates for the threaded runtimes.
#
# TSan leg (AERIS_SANITIZE=thread): (a) the swipe test suite, where the
# poisoning / fault-injection races would live if we had any, (b) the
# concurrent shared-model ensemble tests, which pin the reentrant-forward
# claim that inference holds no shared mutable state, and (c) the serving
# suite incl. the fault drill — randomized concurrent clients, deadlines,
# quarantine and queue saturation against one ForecastServer.
#
# Both legs also run the inference-hot-path suite: the TSan leg pins the
# concurrent first-touch of shared bf16 weight packs (double-checked
# lazy rounding under a shared model) and the per-owner conditioning-cache
# model (caches must never be shared across engine threads); the ASan leg
# covers the cache's tensor lifetimes (Mod tensors outlive the stage that
# inserted them).
#
# ASan leg (AERIS_SANITIZE=address): the serving suite again — the server
# juggles cross-request tensor lifetimes (packs point into other requests'
# trajectories), which is exactly where use-after-free would hide.
#
# Both legs additionally run the consistency suite: mixed teacher/student
# clients share one engine (and one per-worker conditioning cache) across
# server workers, and the distiller's EMA-target refresh is the one place
# a model's weights mutate while a cache generation is live.
#
# Both legs also run the multimodel suite: the randomized mixed-variant
# pack-purity drill plus concurrent clients spread across a model zoo —
# distinct engines (some sharing backbone weight storage) routed through
# one server, where a pack that mixed variants or a cache entry that
# crossed models would surface as a race or a lifetime bug.
#
# Both legs also run the cluster suite — worker ranks dying (kills,
# escaped exceptions, hangs) while leases are in flight is the richest
# unwinding in the codebase, and the randomized chaos kill drill is the
# cluster's acceptance test: every request must terminate typed while
# incarnations collapse and re-form under the sanitizer.
#
# Both legs also run the elastic suite: the park/un-park chaos soak races
# offer_worker against quorum collapse — join handshakes, probation
# promotion and admission resumption all cross threads, and the
# membership roster hand-off between the front-end and the manager is the
# newest place a race or a stale-pointer bug would hide.
#
# Usage: scripts/ci_sanitize.sh [tsan_build_dir] [asan_build_dir]
#   (defaults: <repo>/build-tsan, <repo>/build-asan)
# Also wired as a CMake target: cmake --build build --target ci_sanitize
set -e
repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}
asan_build=${2:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" -DAERIS_SANITIZE=thread
cmake --build "$build" -j --target test_swipe test_core test_serving test_infer_hotpath test_consistency test_multimodel test_cluster test_elastic
# TSan aborts the process on the first race (halt_on_error), so a clean
# exit means a clean suite. The timeout backstops comm deadlocks.
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_swipe"
echo "TSan swipe suite clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_core" \
  --gtest_filter='ParallelEnsemble.*:FwdCtxRegression.*'
echo "TSan concurrent-ensemble suite clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_serving"
echo "TSan serving suite (incl. fault drill) clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_infer_hotpath"
echo "TSan inference-hot-path suite (bf16 pack first-touch, cond cache) clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_consistency"
echo "TSan consistency suite (mixed teacher/student serving) clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_multimodel"
echo "TSan multimodel suite (mixed-variant pack purity drill) clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_cluster"
echo "TSan cluster suite (incl. chaos kill drill) clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_elastic"
echo "TSan elastic suite (incl. park/un-park chaos soak) clean"

cmake -B "$asan_build" -S "$repo" -DAERIS_SANITIZE=address
cmake --build "$asan_build" -j --target test_serving test_infer_hotpath test_consistency test_multimodel test_cluster test_elastic
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_serving"
echo "ASan serving suite clean"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_infer_hotpath"
echo "ASan inference-hot-path suite clean"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_consistency"
echo "ASan consistency suite clean"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_multimodel"
echo "ASan multimodel suite (mixed-variant pack purity drill) clean"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_cluster"
echo "ASan cluster suite (incl. chaos kill drill) clean"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 $ASAN_OPTIONS" \
  timeout 600 "$asan_build/tests/test_elastic"
echo "ASan elastic suite (incl. park/un-park chaos soak) clean"
