#!/usr/bin/env sh
# ThreadSanitizer gate for the threaded runtimes: builds a dedicated tree
# with AERIS_SANITIZE=thread and runs (a) the swipe test suite, where the
# poisoning / fault-injection races would live if we had any, and (b) the
# concurrent shared-model ensemble tests, which pin the reentrant-forward
# claim that inference holds no shared mutable state.
# Usage: scripts/ci_sanitize.sh [build_dir]   (default: <repo>/build-tsan)
# Also wired as a CMake target: cmake --build build --target ci_sanitize
set -e
repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}
cmake -B "$build" -S "$repo" -DAERIS_SANITIZE=thread
cmake --build "$build" -j --target test_swipe test_core
# TSan aborts the process on the first race (halt_on_error), so a clean
# exit means a clean suite. The timeout backstops comm deadlocks.
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_swipe"
echo "TSan swipe suite clean"
TSAN_OPTIONS="halt_on_error=1 $TSAN_OPTIONS" \
  timeout 600 "$build/tests/test_core" \
  --gtest_filter='ParallelEnsemble.*:FwdCtxRegression.*'
echo "TSan concurrent-ensemble suite clean"
