#!/usr/bin/env sh
# Perf-regression gate on the hot rows. Rebuilds bench_micro, records a
# fresh JSON run into the build tree (never touching the committed
# baseline) and compares it against <repo>/BENCH_micro.json with
# scripts/bench_compare.py, restricted to the rows that gate CI: GEMM,
# window attention, the conditioning cache, ensemble rollout and the
# forecast servers (single-process and cluster) plus the elastic
# park/rejoin cycle. Exits 1 when any hot
# row is more than 20% slower than the baseline — refresh the baseline
# with scripts/bench_micro_json.sh when a slowdown is intentional.
#
# Usage: scripts/bench_check.sh [build_dir]
# Also wired as a CMake target: cmake --build build --target bench_check
set -e
repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
hot='BM_Gemm,BM_WindowAttention,BM_CondCache,BM_EnsembleRollout,BM_ForecastServer,BM_ClusterForecastServer,BM_ClusterRejoin'

cmake --build "$build" -j --target bench_micro
"$build/bench/bench_micro" \
  --benchmark_filter='BM_(Gemm|WindowAttention|CondCache|EnsembleRollout|ForecastServer|ClusterForecastServer|ClusterRejoin)' \
  --benchmark_out="$build/bench_check.json" \
  --benchmark_out_format=json
python3 "$repo/scripts/bench_compare.py" "$build/bench_check.json" \
  --only "$hot" --threshold 0.20
echo "bench_check: hot rows within 20% of BENCH_micro.json"
