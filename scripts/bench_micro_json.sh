#!/usr/bin/env sh
# Rebuilds bench_micro and records kernel microbenchmark results to
# <repo>/BENCH_micro.json (google-benchmark JSON), giving each PR a perf
# trajectory to compare against. Usage: scripts/bench_micro_json.sh [build_dir]
set -e
repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
cmake --build "$build" --target bench_micro_json
echo "wrote $repo/BENCH_micro.json"
